package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"oraclesize/internal/campaign"
	"oraclesize/internal/catalog"
	"oraclesize/internal/graph"
	"oraclesize/internal/oracle"
	"oraclesize/internal/sim"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/advice", s.instrument("/v1/advice", s.handleAdvice))
	mux.Handle("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	mux.Handle("POST /v1/shard", s.instrument("/v1/shard", s.handleShard))
	mux.Handle("POST /v1/campaign", s.instrument("/v1/campaign", s.handleCampaignSubmit))
	mux.Handle("GET /v1/campaign/{id}", s.instrument("/v1/campaign/{id}", s.handleCampaignGet))
	// Admin surface: live tenant-table reload and inspection. The handlers
	// themselves enforce the admin grant (403 for ordinary tenants).
	mux.Handle("POST /v1/admin/tenants/reload", s.instrument("/v1/admin/tenants/reload", s.handleTenantsReload))
	mux.Handle("GET /v1/admin/tenants", s.instrument("/v1/admin/tenants", s.handleTenantsShow))
	// /healthz and /metrics stay open even in multi-tenant mode: liveness
	// probes and scrapers do not carry tenant keys. Neither exposes tenant
	// data beyond the bounded per-tenant counters.
	mux.Handle("GET /healthz", s.instrumentOpen("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	return mux
}

// apiError carries an HTTP status through handler returns.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// instrument adapts a handler returning (body, error) to http.Handler. It
// is also the tenancy gate: the request is resolved to a tenant and charged
// one rate token BEFORE the handler runs, so nothing inside a handler —
// including the response-cache fast lane — can serve an unauthenticated or
// over-quota request. Errors map to status codes: apiError as given, errBusy
// to 503 + Retry-After (server saturated), throttleError to 429 +
// Retry-After (tenant over quota), errDeadline to 504, anything else to 500.
func (s *Server) instrument(endpoint string, fn func(w http.ResponseWriter, r *http.Request, ts *tenantState) (any, error)) http.Handler {
	return s.instrumented(endpoint, fn, false)
}

// instrumentOpen instruments an endpoint that never authenticates (liveness
// probes); its traffic is attributed to the anonymous tenant state.
func (s *Server) instrumentOpen(endpoint string, fn func(w http.ResponseWriter, r *http.Request, ts *tenantState) (any, error)) http.Handler {
	return s.instrumented(endpoint, fn, true)
}

func (s *Server) instrumented(endpoint string, fn func(w http.ResponseWriter, r *http.Request, ts *tenantState) (any, error), open bool) http.Handler {
	// The endpoint's metric table is resolved once, here, so the per-request
	// path below is pure atomic adds — no map lookup, no registry lock.
	em := s.metrics.endpoint(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		var (
			ts  *tenantState
			err error
		)
		if open {
			ts = s.anonymous
		} else {
			ts, err = s.tenantFor(r)
			if err == nil {
				err = s.admit(ts)
			}
		}
		var body any
		if err == nil {
			body, err = fn(w, r, ts)
		}
		status := http.StatusOK
		if err != nil {
			var ae *apiError
			var te *throttleError
			switch {
			case errors.As(err, &ae):
				status = ae.status
			case errors.As(err, &te):
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", strconv.FormatInt(retrySeconds(te.retryAfter), 10))
			case errors.Is(err, errBusy):
				status = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", strconv.FormatInt(retrySeconds(s.cfg.RetryAfter), 10))
			case errors.Is(err, errDeadline):
				status = http.StatusGatewayTimeout
			default:
				status = http.StatusInternalServerError
			}
			switch status {
			case http.StatusServiceUnavailable:
				s.metrics.shed.Add(1)
				ts.shed.Add(1)
			case http.StatusTooManyRequests:
				s.metrics.throttled.Add(1)
				ts.throttled.Add(1)
			}
			body = map[string]string{"error": err.Error()}
		}
		n := writeJSON(w, status, body)
		em.observe(status, time.Since(start))
		if status >= 0 && status < len(ts.codes) {
			ts.codes[status].Add(1)
		}
		// Usage ledger: every finished request counts — a 429 consumed
		// admission work and response bytes just like a 200.
		ts.ledger.requests.Add(1)
		moved := int64(n)
		if r.ContentLength > 0 {
			moved += r.ContentLength
		}
		ts.ledger.bytes.Add(moved)
	})
}

// retrySeconds rounds a backoff hint up to whole seconds, minimum 1 — the
// Retry-After header granularity.
func retrySeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// reqScratch is the pooled per-request decode state for the hot endpoints:
// the slurped body, a reusable reader, the request structs, and the
// response-cache key buffer. A scratch never outlives its handler call —
// the executed closure captures a value copy of the request, not the
// scratch — so handlers release it with a simple defer.
type reqScratch struct {
	body   []byte
	rdr    bytes.Reader
	advice adviceRequest
	run    runRequest
	key    []byte
}

var scratchPool = sync.Pool{
	New: func() any {
		return &reqScratch{body: make([]byte, 0, 512), key: make([]byte, 0, 128)}
	},
}

// readBody slurps the size-capped request body into scr.body, reusing its
// backing array across requests. The cap is the server-wide limit tightened
// by the tenant's own body quota.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, scr *reqScratch, ts *tenantState) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit(ts))
	scr.body = scr.body[:0]
	for {
		if len(scr.body) == cap(scr.body) {
			scr.body = append(scr.body, 0)[:len(scr.body)]
		}
		n, err := r.Body.Read(scr.body[len(scr.body):cap(scr.body)])
		scr.body = scr.body[:len(scr.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return &apiError{
					status: http.StatusRequestEntityTooLarge,
					msg:    fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				}
			}
			return badRequest("decoding request: %v", err)
		}
	}
}

// decode parses the slurped body into dst with the same strictness as
// decodeBody (unknown fields rejected).
func (scr *reqScratch) decode(dst any) error {
	scr.rdr.Reset(scr.body)
	dec := json.NewDecoder(&scr.rdr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// decodeBody parses a size-capped JSON request body into dst. The cold
// endpoints (/v1/shard, /v1/campaign) use it; the hot endpoints go through
// the pooled reqScratch instead.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any, ts *tenantState) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit(ts))
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// appendKeyString length-prefixes s into a response-cache key, so
// concatenated free-form fields can never collide across field boundaries.
func appendKeyString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

// instanceParams selects a cached graph instance; shared by advice and run
// requests.
type instanceParams struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`
	Source int    `json:"source"`
}

// instance validates the parameters against the server's size caps and
// returns the (cached) instance and its graph.
func (s *Server) instance(p instanceParams) (*graph.Graph, *campaign.Instance, error) {
	if p.N < 2 || p.N > s.cfg.MaxNodes {
		return nil, nil, badRequest("n %d out of range [2,%d]", p.N, s.cfg.MaxNodes)
	}
	fam, err := catalog.FamilyByName(p.Family)
	if err != nil {
		return nil, nil, badRequest("%v", err)
	}
	inst, err := s.cache.Instance(fam, p.N, p.Seed)
	if err != nil {
		return nil, nil, badRequest("generating %s n=%d: %v", p.Family, p.N, err)
	}
	g := inst.Graph()
	if g.M() > s.cfg.MaxEdges {
		return nil, nil, badRequest("instance has m=%d edges, cap is %d", g.M(), s.cfg.MaxEdges)
	}
	if p.Source < 0 || p.Source >= g.N() {
		return nil, nil, badRequest("source %d out of range [0,%d)", p.Source, g.N())
	}
	return g, inst, nil
}

// requestContext applies the server's request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// ---- POST /v1/advice ----

type adviceRequest struct {
	instanceParams
	Task string `json:"task"`
	// Scheme selects the oracle by canonical scheme name or alias;
	// empty selects the task's default (the paper's construction).
	Scheme string `json:"scheme,omitempty"`
	// IncludeAdvice adds the per-node advice bit strings to the response.
	IncludeAdvice bool `json:"include_advice,omitempty"`
}

type nodeAdvice struct {
	Node  int    `json:"node"`
	Label int64  `json:"label"`
	Bits  int    `json:"bits"`
	S     string `json:"s"`
}

type adviceResponse struct {
	Family        string       `json:"family"`
	Nodes         int          `json:"nodes"`
	Edges         int          `json:"edges"`
	MaxDegree     int          `json:"max_degree"`
	Task          string       `json:"task"`
	Scheme        string       `json:"scheme"`
	Oracle        string       `json:"oracle"`
	TotalBits     int          `json:"total_bits"`
	MaxNodeBits   int          `json:"max_node_bits"`
	NonEmptyNodes int          `json:"nonempty_nodes"`
	WallNS        int64        `json:"wall_ns"`
	Advice        []nodeAdvice `json:"advice,omitempty"`
}

// adviceCacheKey builds the response-cache key for an advice request: every
// response-affecting request field, plus a distinct endpoint tag.
func adviceCacheKey(b []byte, req *adviceRequest) []byte {
	b = append(b, 'a', 0)
	b = appendKeyString(b, req.Family)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(req.N), 10)
	b = append(b, 0)
	b = strconv.AppendInt(b, req.Seed, 10)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(req.Source), 10)
	b = append(b, 0)
	b = appendKeyString(b, req.Task)
	b = append(b, 0)
	b = appendKeyString(b, req.Scheme)
	b = append(b, 0)
	if req.IncludeAdvice {
		return append(b, 1)
	}
	return append(b, 0)
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request, ts *tenantState) (any, error) {
	scr := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(scr)
	if err := s.readBody(w, r, scr, ts); err != nil {
		return nil, err
	}
	scr.advice = adviceRequest{}
	if err := scr.decode(&scr.advice); err != nil {
		return nil, err
	}
	req := scr.advice
	// Fast lane: oracle advice is a pure function of the request, so a
	// repeat request is answered with the previously encoded bytes without
	// touching the work queue. A key can only hit if the identical request
	// succeeded before, so validation is not bypassed — it already ran; and
	// authentication/rate admission ran in instrument before this handler,
	// so a cached body is never handed to an unauthorized request.
	cacheable := s.responses != nil && !s.draining.Load()
	if cacheable {
		scr.key = adviceCacheKey(scr.key[:0], &req)
		if body := s.responses.get(scr.key); body != nil {
			s.metrics.respHits.Add(1)
			return rawJSON(body), nil
		}
		s.metrics.respMisses.Add(1)
	}
	td, sc, err := resolveScheme(req.Task, req.Scheme)
	if err != nil {
		return nil, err
	}
	_ = td
	g, h, err := s.instance(req.instanceParams)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	src := graph.NodeID(req.Source)
	body, err := s.execute(ctx, ts, func() (any, error) {
		start := time.Now()
		orc := sc.NewOracle(src)
		advice, err := h.Advice(orc, src)
		if err != nil {
			return nil, badRequest("advising: %v", err)
		}
		stats := oracle.Stats(advice)
		resp := &adviceResponse{
			Family:        req.Family,
			Nodes:         g.N(),
			Edges:         g.M(),
			MaxDegree:     g.MaxDegree(),
			Task:          req.Task,
			Scheme:        sc.Name,
			Oracle:        orc.Name(),
			TotalBits:     stats.TotalBits,
			MaxNodeBits:   stats.MaxNodeBits,
			NonEmptyNodes: stats.NonEmptyNodes,
			WallNS:        time.Since(start).Nanoseconds(),
		}
		if req.IncludeAdvice {
			resp.Advice = make([]nodeAdvice, g.N())
			for v := 0; v < g.N(); v++ {
				a := advice[graph.NodeID(v)]
				resp.Advice[v] = nodeAdvice{
					Node:  v,
					Label: g.Label(graph.NodeID(v)),
					Bits:  a.Len(),
					S:     a.String(),
				}
			}
		}
		return resp, nil
	})
	if err != nil || !cacheable {
		return body, err
	}
	enc := encodeResponse(make([]byte, 0, 512), body)
	s.responses.put(scr.key, enc)
	return rawJSON(enc), nil
}

// ---- POST /v1/run ----

type runRequest struct {
	instanceParams
	Task string `json:"task"`
	// Scheme selects the oracle/algorithm pairing (canonical name or
	// alias); empty selects the task's default.
	Scheme string `json:"scheme,omitempty"`
	// Scheduler orders deliveries for the queue engine (default fifo).
	Scheduler string `json:"scheduler,omitempty"`
	// Engine is "queue" (deterministic, default) or "goroutines".
	Engine string `json:"engine,omitempty"`
	// MaxMessages caps sends; 0 selects the catalog budget, and requests
	// are clamped to the server's configured ceiling either way.
	MaxMessages int `json:"max_messages,omitempty"`
}

type runResponse struct {
	Family       string         `json:"family"`
	Nodes        int            `json:"nodes"`
	Edges        int            `json:"edges"`
	Task         string         `json:"task"`
	Scheme       string         `json:"scheme"`
	Oracle       string         `json:"oracle"`
	Algorithm    string         `json:"algorithm"`
	Engine       string         `json:"engine"`
	Scheduler    string         `json:"scheduler,omitempty"`
	AdviceBits   int            `json:"advice_bits"`
	Messages     int            `json:"messages"`
	MessageBits  int            `json:"message_bits"`
	ByKind       map[string]int `json:"by_kind,omitempty"`
	MaxNodeSends int            `json:"max_node_sends"`
	Rounds       int            `json:"rounds"`
	Informed     int            `json:"informed"`
	Complete     bool           `json:"complete"`
	CheckError   string         `json:"check_error,omitempty"`
	WallNS       int64          `json:"wall_ns"`
}

// runCacheKey builds the response-cache key for a run request. Every
// response-affecting field participates; the engine field is included even
// though only queue-engine requests are cacheable, so the "" and "queue"
// spellings get (equally correct) separate entries.
func runCacheKey(b []byte, req *runRequest) []byte {
	b = append(b, 'r', 0)
	b = appendKeyString(b, req.Family)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(req.N), 10)
	b = append(b, 0)
	b = strconv.AppendInt(b, req.Seed, 10)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(req.Source), 10)
	b = append(b, 0)
	b = appendKeyString(b, req.Task)
	b = append(b, 0)
	b = appendKeyString(b, req.Scheme)
	b = append(b, 0)
	b = appendKeyString(b, req.Scheduler)
	b = append(b, 0)
	b = appendKeyString(b, req.Engine)
	b = append(b, 0)
	return strconv.AppendInt(b, int64(req.MaxMessages), 10)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, ts *tenantState) (any, error) {
	scr := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(scr)
	if err := s.readBody(w, r, scr, ts); err != nil {
		return nil, err
	}
	scr.run = runRequest{}
	if err := scr.decode(&scr.run); err != nil {
		return nil, err
	}
	req := scr.run
	// Fast lane: a queue-engine run is deterministic in the request tuple
	// (schedulers draw from the request seed), so repeats replay the first
	// execution's encoded response. The goroutines engine races real
	// goroutines and is never cached.
	cacheable := s.responses != nil && !s.draining.Load() &&
		(req.Engine == "" || req.Engine == "queue")
	if cacheable {
		scr.key = runCacheKey(scr.key[:0], &req)
		if body := s.responses.get(scr.key); body != nil {
			s.metrics.respHits.Add(1)
			return rawJSON(body), nil
		}
		s.metrics.respMisses.Add(1)
	}
	td, sc, err := resolveScheme(req.Task, req.Scheme)
	if err != nil {
		return nil, err
	}
	engine := req.Engine
	if engine == "" {
		engine = "queue"
	}
	if engine != "queue" && engine != "goroutines" {
		return nil, badRequest("unknown engine %q (queue | goroutines)", req.Engine)
	}
	if engine == "goroutines" && td.NeedsNodes {
		return nil, badRequest("%s verification needs the queue engine", td.Name)
	}
	schedName := req.Scheduler
	if schedName == "" {
		schedName = "fifo"
	}
	if engine == "queue" {
		if _, err := catalog.SchedulerByName(schedName, req.Seed); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	g, h, err := s.instance(req.instanceParams)
	if err != nil {
		return nil, err
	}
	budget := req.MaxMessages
	if budget <= 0 || budget > catalog.MessageBudget(g) {
		budget = catalog.MessageBudget(g)
	}
	if budget > s.cfg.maxMessageCeiling() {
		budget = s.cfg.maxMessageCeiling()
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	src := graph.NodeID(req.Source)
	body, err := s.execute(ctx, ts, func() (any, error) {
		start := time.Now()
		advice, err := h.Advice(sc.NewOracle(src), src)
		if err != nil {
			return nil, badRequest("advising: %v", err)
		}
		var res *sim.Result
		if engine == "queue" {
			sched, err := catalog.SchedulerByName(schedName, req.Seed)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			// The default FIFO scheduler is allocation-free inside the
			// pooled engine; passing it explicitly would cost a fresh
			// queue per request.
			if schedName == "fifo" {
				sched = nil
			}
			res, err = sim.Run(g, src, sc.Algo, advice, sim.Options{
				Scheduler:     sched,
				EnforceWakeup: td.EnforceWakeup,
				RetainNodes:   td.NeedsNodes,
				MaxMessages:   budget,
			})
			if err != nil {
				return nil, badRequest("run: %v", err)
			}
		} else {
			res, err = sim.RunConcurrent(g, src, sc.Algo, advice, budget)
			if err != nil {
				return nil, badRequest("run: %v", err)
			}
		}
		informed := 0
		for _, inf := range res.Informed {
			if inf {
				informed++
			}
		}
		resp := &runResponse{
			Family:       req.Family,
			Nodes:        g.N(),
			Edges:        g.M(),
			Task:         req.Task,
			Scheme:       sc.Name,
			Oracle:       sc.NewOracle(src).Name(),
			Algorithm:    sc.Algo.Name(),
			Engine:       engine,
			AdviceBits:   advice.SizeBits(),
			Messages:     res.Messages,
			MessageBits:  res.MessageBits,
			MaxNodeSends: res.MaxNodeSends,
			Rounds:       res.Rounds,
			Informed:     informed,
			WallNS:       time.Since(start).Nanoseconds(),
		}
		if engine == "queue" {
			resp.Scheduler = schedName
		}
		if err := td.Check(res); err != nil {
			resp.CheckError = err.Error()
		} else {
			resp.Complete = true
		}
		if len(res.ByKind) > 0 {
			resp.ByKind = make(map[string]int, len(res.ByKind))
			for k, c := range res.ByKind {
				resp.ByKind[k.String()] = c
			}
		}
		// One executed simulation is one ledger unit; response-cache hits
		// never reach here, so replayed answers cost the tenant nothing.
		ts.ledger.units.Add(1)
		return resp, nil
	})
	if err != nil || !cacheable {
		return body, err
	}
	enc := encodeResponse(make([]byte, 0, 512), body)
	s.responses.put(scr.key, enc)
	return rawJSON(enc), nil
}

// resolveScheme resolves task and scheme names through the catalog.
func resolveScheme(task, schemeName string) (catalog.Task, catalog.Scheme, error) {
	td, err := catalog.TaskByName(task)
	if err != nil {
		return catalog.Task{}, catalog.Scheme{}, badRequest("%v", err)
	}
	if schemeName == "" {
		return td, td.DefaultScheme(), nil
	}
	sc, err := td.SchemeByName(schemeName)
	if err != nil {
		return catalog.Task{}, catalog.Scheme{}, badRequest("%v", err)
	}
	return td, sc, nil
}

// ---- GET /healthz ----

type healthResponse struct {
	Status           string `json:"status"`
	QueueDepth       int64  `json:"queue_depth"`
	QueueCapacity    int    `json:"queue_capacity"`
	Executing        int64  `json:"executing"`
	Inflight         int64  `json:"inflight"`
	CampaignsRunning int64  `json:"campaigns_running"`
	// Build identifies the worker binary and CatalogFingerprint the name
	// registry it resolves specs against; a cluster coordinator reads both
	// to log which build served each shard and to refuse fleets whose
	// catalogs disagree.
	Build              BuildInfo `json:"build"`
	CatalogFingerprint string    `json:"catalog_fingerprint"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request, _ *tenantState) (any, error) {
	status := "ok"
	if s.Draining() {
		// A draining worker stays reachable — the coordinator marks it
		// draining instead of evicting it — and the Retry-After bound says
		// how long its in-flight work may still take.
		status = "draining"
		retry := int64((s.drainRetryAfter() + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
	}
	return &healthResponse{
		Status:             status,
		QueueDepth:         s.metrics.queued.Load(),
		QueueCapacity:      s.cfg.QueueDepth,
		Executing:          s.metrics.executing.Load(),
		Inflight:           s.metrics.inflight.Load(),
		CampaignsRunning:   s.campaigns.running(),
		Build:              buildInfo,
		CatalogFingerprint: catalog.Fingerprint(),
	}, nil
}
