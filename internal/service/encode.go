package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// This file is the serving path's encoder: append-style writers for the two
// fixed-shape hot responses (/v1/advice, /v1/run) plus a pooled buffer so a
// response costs zero steady-state heap allocations and exactly one
// ResponseWriter.Write.
//
// The contract — pinned by TestFastEncodersMatchStdlib — is byte-identity
// with what the pre-fast-lane code produced: json.NewEncoder(w).Encode(v),
// i.e. encoding/json with HTML escaping on and a trailing newline. Field
// order follows the struct declarations, omitempty fields drop when empty,
// and map keys sort bytewise, exactly as encoding/json does.

// rawJSON is a fully encoded response body (trailing newline included).
// Handlers return it when the bytes already exist — a response-cache hit,
// or a just-encoded body that is also being stored — and writeJSON sends
// it verbatim.
type rawJSON []byte

type encodeBuf struct{ b []byte }

var encPool = sync.Pool{
	New: func() any { return &encodeBuf{b: make([]byte, 0, 1024)} },
}

// writeJSON encodes body and writes it with Content-Length set, buffering
// through a pooled scratch so the encoder never allocates and the response
// goes out in one Write. It returns the body's byte length — the usage
// ledger charges response bytes to the tenant.
func writeJSON(w http.ResponseWriter, status int, body any) int {
	if raw, ok := body.(rawJSON); ok {
		return writeBody(w, status, raw)
	}
	eb := encPool.Get().(*encodeBuf)
	eb.b = encodeResponse(eb.b[:0], body)
	n := writeBody(w, status, eb.b)
	encPool.Put(eb)
	return n
}

func writeBody(w http.ResponseWriter, status int, body []byte) int {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body) // the status line is already out; nothing to do on error
	return len(body)
}

// encodeResponse appends body's encoding to b: the fast path for the two
// fixed-shape responses, encoding/json for everything else (campaign
// status, health, error objects). Both paths end with the Encoder's
// trailing newline.
func encodeResponse(b []byte, body any) []byte {
	switch v := body.(type) {
	case *adviceResponse:
		return append(appendAdviceResponse(b, v), '\n')
	case *runResponse:
		return append(appendRunResponse(b, v), '\n')
	default:
		buf := bytes.NewBuffer(b)
		enc := json.NewEncoder(buf)
		_ = enc.Encode(body)
		return buf.Bytes()
	}
}

// appendJSONString appends s as a JSON string. ASCII without escapes — every
// name, scheme, and bit string this server emits — is copied directly; any
// byte that needs escaping punts to encoding/json, whose output (HTML
// escaping included) is the identity target.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				enc = []byte(`""`)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

func appendAdviceResponse(b []byte, r *adviceResponse) []byte {
	b = append(b, `{"family":`...)
	b = appendJSONString(b, r.Family)
	b = append(b, `,"nodes":`...)
	b = strconv.AppendInt(b, int64(r.Nodes), 10)
	b = append(b, `,"edges":`...)
	b = strconv.AppendInt(b, int64(r.Edges), 10)
	b = append(b, `,"max_degree":`...)
	b = strconv.AppendInt(b, int64(r.MaxDegree), 10)
	b = append(b, `,"task":`...)
	b = appendJSONString(b, r.Task)
	b = append(b, `,"scheme":`...)
	b = appendJSONString(b, r.Scheme)
	b = append(b, `,"oracle":`...)
	b = appendJSONString(b, r.Oracle)
	b = append(b, `,"total_bits":`...)
	b = strconv.AppendInt(b, int64(r.TotalBits), 10)
	b = append(b, `,"max_node_bits":`...)
	b = strconv.AppendInt(b, int64(r.MaxNodeBits), 10)
	b = append(b, `,"nonempty_nodes":`...)
	b = strconv.AppendInt(b, int64(r.NonEmptyNodes), 10)
	b = append(b, `,"wall_ns":`...)
	b = strconv.AppendInt(b, r.WallNS, 10)
	if len(r.Advice) > 0 {
		b = append(b, `,"advice":[`...)
		for i := range r.Advice {
			if i > 0 {
				b = append(b, ',')
			}
			a := &r.Advice[i]
			b = append(b, `{"node":`...)
			b = strconv.AppendInt(b, int64(a.Node), 10)
			b = append(b, `,"label":`...)
			b = strconv.AppendInt(b, a.Label, 10)
			b = append(b, `,"bits":`...)
			b = strconv.AppendInt(b, int64(a.Bits), 10)
			b = append(b, `,"s":`...)
			b = appendJSONString(b, a.S)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

func appendRunResponse(b []byte, r *runResponse) []byte {
	b = append(b, `{"family":`...)
	b = appendJSONString(b, r.Family)
	b = append(b, `,"nodes":`...)
	b = strconv.AppendInt(b, int64(r.Nodes), 10)
	b = append(b, `,"edges":`...)
	b = strconv.AppendInt(b, int64(r.Edges), 10)
	b = append(b, `,"task":`...)
	b = appendJSONString(b, r.Task)
	b = append(b, `,"scheme":`...)
	b = appendJSONString(b, r.Scheme)
	b = append(b, `,"oracle":`...)
	b = appendJSONString(b, r.Oracle)
	b = append(b, `,"algorithm":`...)
	b = appendJSONString(b, r.Algorithm)
	b = append(b, `,"engine":`...)
	b = appendJSONString(b, r.Engine)
	if r.Scheduler != "" {
		b = append(b, `,"scheduler":`...)
		b = appendJSONString(b, r.Scheduler)
	}
	b = append(b, `,"advice_bits":`...)
	b = strconv.AppendInt(b, int64(r.AdviceBits), 10)
	b = append(b, `,"messages":`...)
	b = strconv.AppendInt(b, int64(r.Messages), 10)
	b = append(b, `,"message_bits":`...)
	b = strconv.AppendInt(b, int64(r.MessageBits), 10)
	if len(r.ByKind) > 0 {
		b = append(b, `,"by_kind":{`...)
		keys := make([]string, 0, len(r.ByKind))
		for k := range r.ByKind {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, k)
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(r.ByKind[k]), 10)
		}
		b = append(b, '}')
	}
	b = append(b, `,"max_node_sends":`...)
	b = strconv.AppendInt(b, int64(r.MaxNodeSends), 10)
	b = append(b, `,"rounds":`...)
	b = strconv.AppendInt(b, int64(r.Rounds), 10)
	b = append(b, `,"informed":`...)
	b = strconv.AppendInt(b, int64(r.Informed), 10)
	b = append(b, `,"complete":`...)
	if r.Complete {
		b = append(b, `true`...)
	} else {
		b = append(b, `false`...)
	}
	if r.CheckError != "" {
		b = append(b, `,"check_error":`...)
		b = appendJSONString(b, r.CheckError)
	}
	b = append(b, `,"wall_ns":`...)
	b = strconv.AppendInt(b, r.WallNS, 10)
	return append(b, '}')
}
