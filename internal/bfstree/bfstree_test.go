package bfstree

import (
	"math/rand"
	"testing"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	t.Helper()
	return func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(16))
	return map[string]*graph.Graph{
		"path":      mustGraph(t)(graphgen.Path(12)),
		"cycle":     mustGraph(t)(graphgen.Cycle(11)),
		"grid":      mustGraph(t)(graphgen.Grid(5, 5)),
		"hypercube": mustGraph(t)(graphgen.Hypercube(5)),
		"random":    mustGraph(t)(graphgen.RandomConnected(30, 80, rng)),
		"complete":  mustGraph(t)(graphgen.Complete(10)),
	}
}

func TestFloodBuildsBFSTreeSync(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := sim.Run(g, 0, Flood{}, nil, sim.Options{RetainNodes: true})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Verify(g, 0, res.Nodes); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Under FIFO (synchronous) delivery, each node announces at most
		// once: <= 2m messages.
		if res.Messages > 2*g.M() {
			t.Errorf("%s: %d messages > 2m under FIFO", name, res.Messages)
		}
	}
}

func TestFloodCorrectUnderAdversarialOrders(t *testing.T) {
	g := mustGraph(t)(graphgen.RandomConnected(30, 90, rand.New(rand.NewSource(4))))
	for name, factory := range sim.Schedulers(8) {
		res, err := sim.Run(g, 3, Flood{}, nil, sim.Options{
			Scheduler:   factory(),
			RetainNodes: true,
			MaxMessages: 4*g.N()*g.M() + 1024,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Verify(g, 3, res.Nodes); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAsynchronyCostsMessages(t *testing.T) {
	// LIFO delivery forces distance corrections: messages exceed the
	// synchronous count on a graph with long detours.
	g := mustGraph(t)(graphgen.Lollipop(12, 20))
	fifo, err := sim.Run(g, 0, Flood{}, nil, sim.Options{Scheduler: sim.NewFIFO(), RetainNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	lifo, err := sim.Run(g, 0, Flood{}, nil, sim.Options{
		Scheduler:   sim.NewLIFO(),
		RetainNodes: true,
		MaxMessages: 4*g.N()*g.M() + 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, 0, fifo.Nodes); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, 0, lifo.Nodes); err != nil {
		t.Fatal(err)
	}
	if lifo.Messages < fifo.Messages {
		t.Errorf("LIFO (%d msgs) cheaper than FIFO (%d)", lifo.Messages, fifo.Messages)
	}
}

func TestOracleSilentZeroMessages(t *testing.T) {
	for name, g := range testGraphs(t) {
		advice, err := Oracle{}.Advise(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := sim.Run(g, 0, Silent{}, advice, sim.Options{RetainNodes: true})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Messages != 0 {
			t.Errorf("%s: oracle-fed protocol sent %d messages", name, res.Messages)
		}
		if err := Verify(g, 0, res.Nodes); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDecodeAdviceRoundTrip(t *testing.T) {
	g := mustGraph(t)(graphgen.Grid(4, 4))
	advice, err := Oracle{}.Advise(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.BFS(5)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		d, p, err := DecodeAdvice(advice[v])
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		if d != truth.Dist[v] {
			t.Errorf("node %d: dist %d, want %d", v, d, truth.Dist[v])
		}
		if v == 5 {
			if p != -1 {
				t.Errorf("source parent = %d", p)
			}
		} else if p != truth.ParentPort[v] {
			t.Errorf("node %d: parent %d, want %d", v, p, truth.ParentPort[v])
		}
	}
}

func TestDecodeAdviceRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeAdvice(bitstring.FromBits(0, 1, 1)); err == nil {
		t.Error("garbage accepted")
	}
	var w bitstring.Writer
	w.AppendDoubled(5)
	w.WriteFixed(0, 5)
	w.WriteFixed(0, 3) // ragged
	if _, _, err := DecodeAdvice(w.String()); err == nil {
		t.Error("ragged advice accepted")
	}
}

func TestVerifyCatchesWrongOutputs(t *testing.T) {
	g := mustGraph(t)(graphgen.Path(4))
	// Silent with no advice leaves everyone undecided.
	res, err := sim.Run(g, 0, Silent{}, nil, sim.Options{RetainNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, 0, res.Nodes); err == nil {
		t.Error("undecided outputs verified")
	}
	if err := Verify(g, 0, nil); err == nil {
		t.Error("missing automata verified")
	}
}

func TestOracleRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(2, 3)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Oracle{}).Advise(g, 0); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func BenchmarkBFSFlood(b *testing.B) {
	g, err := graphgen.RandomConnected(256, 1024, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, 0, Flood{}, nil, sim.Options{RetainNodes: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages == 0 {
			b.Fatal("no messages")
		}
	}
}
