// Package bfstree applies the oracle-size lens to a task the paper's §1.2
// names directly: the construction of a BFS tree. Every node must output
// its BFS distance from the source and (except the source) a parent port
// pointing to a neighbor at distance one less.
//
// The knowledge ladder:
//
//   - zero advice: a distance-stamped flood. Under synchronous delivery
//     the first arrival carries the true BFS distance and the protocol
//     costs at most 2m messages; under adversarial asynchrony nodes adopt
//     provisional parents and must re-flood on every improvement, driving
//     the message count up — a measurable price of asynchrony;
//   - Θ(n log n) advice: the oracle writes each node's parent port and
//     distance; nodes output them with zero messages.
//
// Verification is exact: distances must equal true BFS distances and every
// parent edge must descend one level.
package bfstree

import (
	"fmt"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
)

// Outcome is a node's final output.
type Outcome struct {
	// Decided reports whether the node produced an output.
	Decided bool
	// Dist is the claimed BFS distance from the source.
	Dist int
	// ParentPort is the claimed parent port; -1 at the source.
	ParentPort int
}

// Reporter is implemented by bfstree automata.
type Reporter interface {
	Outcome() Outcome
}

// Verify checks retained automata against the true BFS structure of g.
func Verify(g *graph.Graph, source graph.NodeID, nodes []scheme.Node) error {
	if len(nodes) != g.N() {
		return fmt.Errorf("bfstree: %d automata for %d nodes (RetainNodes unset?)", len(nodes), g.N())
	}
	truth := g.BFS(source)
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		rep, ok := nodes[v].(Reporter)
		if !ok {
			return fmt.Errorf("bfstree: node %d (%T) is not a Reporter", v, nodes[v])
		}
		out := rep.Outcome()
		if !out.Decided {
			return fmt.Errorf("bfstree: node %d undecided", v)
		}
		if out.Dist != truth.Dist[v] {
			return fmt.Errorf("bfstree: node %d claims distance %d, true %d", v, out.Dist, truth.Dist[v])
		}
		if v == source {
			if out.ParentPort != -1 {
				return fmt.Errorf("bfstree: source claims parent port %d", out.ParentPort)
			}
			continue
		}
		if out.ParentPort < 0 || out.ParentPort >= g.Degree(v) {
			return fmt.Errorf("bfstree: node %d parent port %d out of range", v, out.ParentPort)
		}
		u, _ := g.Neighbor(v, out.ParentPort)
		if truth.Dist[u] != out.Dist-1 {
			return fmt.Errorf("bfstree: node %d (dist %d) parent %d has dist %d", v, out.Dist, u, truth.Dist[u])
		}
	}
	return nil
}

// Flood is the zero-advice protocol: the source announces distance 0;
// every node adopts the smallest distance it hears (plus one) and
// re-announces on improvement. Under FIFO delivery each node improves
// once; adversarial orders force repeated corrections.
type Flood struct{}

// Name implements scheme.Algorithm.
func (Flood) Name() string { return "bfs-flood" }

// NewNode implements scheme.Algorithm.
func (Flood) NewNode(info scheme.NodeInfo) scheme.Node {
	nd := &floodNode{info: info, dist: -1, parent: -1}
	if info.Source {
		nd.dist = 0
	}
	return nd
}

type floodNode struct {
	info   scheme.NodeInfo
	dist   int // -1 until first adoption
	parent int
}

// Outcome implements Reporter.
func (nd *floodNode) Outcome() Outcome {
	return Outcome{Decided: nd.dist >= 0, Dist: nd.dist, ParentPort: nd.parent}
}

func (nd *floodNode) Init() []scheme.Send {
	if !nd.info.Source {
		return nil
	}
	return announce(nd.info.Degree, -1, 0)
}

func (nd *floodNode) Receive(msg scheme.Message, port int) []scheme.Send {
	heard := int(msg.Payload)
	if nd.dist >= 0 && heard+1 >= nd.dist {
		return nil
	}
	nd.dist = heard + 1
	nd.parent = port
	return announce(nd.info.Degree, port, nd.dist)
}

func announce(degree, except, dist int) []scheme.Send {
	sends := make([]scheme.Send, 0, degree)
	for p := 0; p < degree; p++ {
		if p == except {
			continue
		}
		sends = append(sends, scheme.Send{Port: p, Msg: scheme.Message{
			Kind:    scheme.KindProbe,
			Payload: uint64(dist),
		}})
	}
	return sends
}

// Oracle writes each node's true parent port and BFS distance — Θ(n log n)
// bits; paired with Silent, the task is solved with zero messages.
type Oracle struct{}

// Name implements oracle.Oracle.
func (Oracle) Name() string { return "bfs-tree" }

// Advise implements oracle.Oracle.
func (Oracle) Advise(g *graph.Graph, source graph.NodeID) (sim.Advice, error) {
	truth := g.BFS(source)
	for v, d := range truth.Dist {
		if d < 0 {
			return nil, fmt.Errorf("bfstree: node %d unreachable from source", v)
		}
	}
	width := oracle.FieldWidth(g.N())
	advice := make(sim.Advice, g.N())
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		var w bitstring.Writer
		w.AppendDoubled(uint64(width))
		w.WriteFixed(uint64(truth.Dist[v]), width)
		if v != source {
			w.WriteFixed(uint64(truth.ParentPort[v]), width)
		}
		advice[v] = w.String()
	}
	return advice, nil
}

// DecodeAdvice parses one node's Oracle string. The source's record has no
// parent field, which the decoder detects from the remaining length.
func DecodeAdvice(s bitstring.String) (dist, parentPort int, err error) {
	r := bitstring.NewReader(s)
	width64, err := r.ReadDoubled()
	if err != nil {
		return 0, 0, fmt.Errorf("bfstree: decoding header: %w", err)
	}
	width := int(width64)
	if width <= 0 || width > 62 {
		return 0, 0, fmt.Errorf("bfstree: invalid width %d", width)
	}
	d, err := r.ReadFixed(width)
	if err != nil {
		return 0, 0, fmt.Errorf("bfstree: decoding distance: %w", err)
	}
	switch r.Remaining() {
	case 0:
		return int(d), -1, nil
	case width:
		p, err := r.ReadFixed(width)
		if err != nil {
			return 0, 0, fmt.Errorf("bfstree: decoding parent: %w", err)
		}
		return int(d), int(p), nil
	default:
		return 0, 0, fmt.Errorf("bfstree: %d trailing bits", r.Remaining())
	}
}

// Silent consumes Oracle advice and transmits nothing.
type Silent struct{}

// Name implements scheme.Algorithm.
func (Silent) Name() string { return "bfs-oracle" }

// NewNode implements scheme.Algorithm.
func (Silent) NewNode(info scheme.NodeInfo) scheme.Node {
	nd := &silentNode{}
	d, p, err := DecodeAdvice(info.Advice)
	if err != nil {
		return nd
	}
	nd.decided = true
	nd.dist = d
	nd.parent = p
	return nd
}

type silentNode struct {
	decided bool
	dist    int
	parent  int
}

// Outcome implements Reporter.
func (nd *silentNode) Outcome() Outcome {
	return Outcome{Decided: nd.decided, Dist: nd.dist, ParentPort: nd.parent}
}

func (silentNode) Init() []scheme.Send                       { return nil }
func (silentNode) Receive(scheme.Message, int) []scheme.Send { return nil }
