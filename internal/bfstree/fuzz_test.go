package bfstree

import (
	"testing"

	"oraclesize/internal/bitstring"
)

// FuzzDecodeAdvice: arbitrary advice decodes or errors, never panics, and
// decoded values are structurally sane.
func FuzzDecodeAdvice(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0b00111100, 0x00})
	f.Add([]byte{0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var w bitstring.Writer
		for _, b := range data {
			for i := 0; i < 8; i++ {
				w.WriteBit(b&(1<<uint(i)) != 0)
			}
		}
		dist, parent, err := DecodeAdvice(w.String())
		if err != nil {
			return
		}
		if dist < 0 {
			t.Fatalf("negative distance %d", dist)
		}
		if parent < -1 {
			t.Fatalf("parent port %d", parent)
		}
	})
}
