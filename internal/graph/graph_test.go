package graph

import (
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdgeAuto(NodeID(i), NodeID(i+1))
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("building path P%d: %v", n, err)
	}
	return g
}

func buildCycle(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdgeAuto(NodeID(i), NodeID((i+1)%n))
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatalf("building cycle C%d: %v", n, err)
	}
	return g
}

func TestBuilderPath(t *testing.T) {
	g := buildPath(t, 5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("P5: N=%d M=%d", g.N(), g.M())
	}
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, d := range wantDeg {
		if g.Degree(NodeID(v)) != d {
			t.Errorf("deg(%d) = %d, want %d", v, g.Degree(NodeID(v)), d)
		}
	}
	// Default labels are 1..n.
	for v := 0; v < 5; v++ {
		if g.Label(NodeID(v)) != int64(v+1) {
			t.Errorf("label(%d) = %d, want %d", v, g.Label(NodeID(v)), v+1)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	g := buildCycle(t, 7)
	for v := NodeID(0); int(v) < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			u, q := g.Neighbor(v, p)
			back, bp := g.Neighbor(u, q)
			if back != v || bp != p {
				t.Fatalf("asymmetric: %d:%d -> %d:%d -> %d:%d", v, p, u, q, back, bp)
			}
		}
	}
}

func TestExplicitPorts(t *testing.T) {
	// Triangle with deliberately permuted ports.
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1, 0)
	b.AddEdge(1, 1, 2, 1)
	b.AddEdge(2, 0, 0, 0)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	u, q := g.Neighbor(0, 1)
	if u != 1 || q != 0 {
		t.Errorf("Neighbor(0,1) = %d:%d, want 1:0", u, q)
	}
	if got := g.PortTo(2, 1); got != 1 {
		t.Errorf("PortTo(2,1) = %d, want 1", got)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdgeAuto(0, 0)
	if _, err := b.Graph(); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestBuilderRejectsPortReuse(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0, 1, 0)
	b.AddEdge(0, 0, 2, 0)
	if _, err := b.Graph(); err == nil {
		t.Error("port reuse accepted")
	}
}

func TestBuilderRejectsPortGap(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1, 0) // leaves port 0 at node 0 unused
	if _, err := b.Graph(); err == nil {
		t.Error("non-contiguous ports accepted")
	}
}

func TestBuilderRejectsParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0, 1, 0)
	b.AddEdge(0, 1, 1, 1)
	if _, err := b.Graph(); err == nil {
		t.Error("parallel edge accepted")
	}
}

func TestBuilderRejectsDuplicateLabels(t *testing.T) {
	b := NewBuilder(2)
	b.SetLabel(0, 7)
	b.SetLabel(1, 7)
	b.AddEdgeAuto(0, 1)
	if _, err := b.Graph(); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestNodeByLabel(t *testing.T) {
	b := NewBuilder(3)
	b.SetLabel(0, 10)
	b.SetLabel(1, 20)
	b.SetLabel(2, 30)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(1, 2)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := g.NodeByLabel(20)
	if !ok || v != 1 {
		t.Errorf("NodeByLabel(20) = %d,%v", v, ok)
	}
	if _, ok := g.NodeByLabel(99); ok {
		t.Error("NodeByLabel(99) found a node")
	}
	if g.MaxLabel() != 30 {
		t.Errorf("MaxLabel = %d", g.MaxLabel())
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := buildCycle(t, 4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("|E| = %d", len(edges))
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: %v", i, e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Errorf("edges not sorted at %d: %v after %v", i, e, prev)
			}
		}
		// Reported ports must be consistent with the adjacency.
		if u, q := g.Neighbor(e.U, e.PU); u != e.V || q != e.PV {
			t.Errorf("edge %v ports inconsistent", e)
		}
	}
}

func TestEdgeCanonicalFlip(t *testing.T) {
	e := Edge{U: 5, V: 2, PU: 3, PV: 1}
	c := e.Canonical()
	want := Edge{U: 2, V: 5, PU: 1, PV: 3}
	if c != want {
		t.Errorf("Canonical = %+v, want %+v", c, want)
	}
	if c.Canonical() != want {
		t.Error("Canonical not idempotent")
	}
}

func TestBFSPath(t *testing.T) {
	g := buildPath(t, 6)
	res := g.BFS(0)
	for v := 0; v < 6; v++ {
		if res.Dist[v] != v {
			t.Errorf("Dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	for v := 1; v < 6; v++ {
		if res.Parent[v] != NodeID(v-1) {
			t.Errorf("Parent[%d] = %d", v, res.Parent[v])
		}
	}
	if res.Parent[0] != -1 || res.ParentPort[0] != -1 {
		t.Error("root has a parent")
	}
	if len(res.Order) != 6 || res.Order[0] != 0 {
		t.Errorf("Order = %v", res.Order)
	}
}

func TestBFSPortsConsistent(t *testing.T) {
	g := buildCycle(t, 9)
	res := g.BFS(3)
	for v := NodeID(0); int(v) < g.N(); v++ {
		if res.Parent[v] < 0 {
			continue
		}
		u, q := g.Neighbor(v, res.ParentPort[v])
		if u != res.Parent[v] {
			t.Errorf("ParentPort[%d] leads to %d, want %d", v, u, res.Parent[v])
		}
		if q != res.ChildPort[v] {
			t.Errorf("ChildPort[%d] = %d, want %d", v, res.ChildPort[v], q)
		}
	}
}

func TestConnectedAndDiameter(t *testing.T) {
	g := buildPath(t, 8)
	if !g.Connected() {
		t.Error("path not connected")
	}
	if d := g.Diameter(); d != 7 {
		t.Errorf("Diameter(P8) = %d, want 7", d)
	}
	c := buildCycle(t, 8)
	if d := c.Diameter(); d != 4 {
		t.Errorf("Diameter(C8) = %d, want 4", d)
	}

	// Disconnected graph: two disjoint edges.
	b := NewBuilder(4)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(2, 3)
	dg, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if dg.Connected() {
		t.Error("disjoint edges reported connected")
	}
	if dg.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestValidatePasses(t *testing.T) {
	for _, n := range []int{3, 5, 17} {
		if err := buildCycle(t, n).Validate(); err != nil {
			t.Errorf("C%d: %v", n, err)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	b := NewBuilder(4) // star
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(0, 2)
	b.AddEdgeAuto(0, 3)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestCycleBFSDistanceProperty(t *testing.T) {
	// In a cycle, dist(0, v) = min(v, n-v).
	f := func(seed uint8) bool {
		n := int(seed%29) + 3
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddEdgeAuto(NodeID(i), NodeID((i+1)%n))
		}
		g, err := b.Graph()
		if err != nil {
			return false
		}
		res := g.BFS(0)
		for v := 0; v < n; v++ {
			want := v
			if n-v < want {
				want = n - v
			}
			if res.Dist[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustGraphPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGraph on invalid build did not panic")
		}
	}()
	b := NewBuilder(2)
	b.AddEdgeAuto(0, 0) // self-loop
	b.MustGraph()
}

func TestMustGraphReturnsValid(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdgeAuto(0, 1)
	g := b.MustGraph()
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
}

func TestEccentricityDisconnected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(1, 2)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if e := g.Eccentricity(1); e != 1 {
		t.Errorf("ecc(center of P3) = %d, want 1", e)
	}
	if e := g.Eccentricity(0); e != 2 {
		t.Errorf("ecc(end of P3) = %d, want 2", e)
	}
}

func TestBuilderErrorsPropagate(t *testing.T) {
	// Errors latch: later valid calls do not clear them.
	b := NewBuilder(3)
	b.AddEdge(0, -1, 1, 0) // negative port
	b.AddEdgeAuto(1, 2)    // fine on its own
	if _, err := b.Graph(); err == nil {
		t.Error("latched builder error lost")
	}
	// SetLabel on an invalid node also latches.
	b2 := NewBuilder(1)
	b2.SetLabel(5, 9)
	if _, err := b2.Graph(); err == nil {
		t.Error("SetLabel on invalid node accepted")
	}
}

func TestPortToMissingEdge(t *testing.T) {
	g := buildPath(t, 3)
	if p := g.PortTo(0, 2); p != -1 {
		t.Errorf("PortTo non-edge = %d, want -1", p)
	}
}
