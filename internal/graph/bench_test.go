package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, extra int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bd := NewBuilder(n)
	type pair struct{ u, v NodeID }
	used := map[pair]bool{}
	add := func(u, v NodeID) {
		if u > v {
			u, v = v, u
		}
		if u == v || used[pair{u, v}] {
			return
		}
		used[pair{u, v}] = true
		bd.AddEdgeAuto(u, v)
	}
	for i := 1; i < n; i++ {
		add(NodeID(rng.Intn(i)), NodeID(i))
	}
	for len(used) < n-1+extra {
		add(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	g, err := bd.Graph()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 4096, 12288)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := g.BFS(0); len(res.Order) != g.N() {
			b.Fatal("incomplete BFS")
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	g := benchGraph(b, 2048, 6144)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdges(b *testing.B) {
	g := benchGraph(b, 2048, 6144)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Edges()) != g.M() {
			b.Fatal("edge count mismatch")
		}
	}
}
