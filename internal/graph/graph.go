// Package graph implements the network model of Fraigniaud, Ilcinkas and
// Pelc (PODC 2006): undirected connected graphs whose nodes carry distinct
// labels and whose edge endpoints carry local port numbers 0..deg(v)-1.
//
// A node of degree d sees its incident edges only through ports 0..d-1; the
// mapping from ports to neighbors is part of the instance, and the paper's
// lower bounds hinge on specific port labelings. Graphs in this package are
// immutable after construction and validated to have a proper port
// assignment.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sync"
)

// NodeID identifies a node as a dense index in [0, N). It is distinct from
// the node's label: proofs in the paper manipulate labels (e.g. nodes
// labeled n+1..2n are the hidden subdivision nodes), while IDs index arrays.
type NodeID int

// Half is a directed half-edge: the far endpoint and the port number used at
// that far endpoint for the reverse direction.
type Half struct {
	To     NodeID
	ToPort int
}

// Edge is an undirected edge in canonical orientation (U < V), together with
// the port numbers at both endpoints.
type Edge struct {
	U, V   NodeID
	PU, PV int
}

// Canonical returns e with endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U, PU: e.PV, PV: e.PU}
	}
	return e
}

// Graph is an immutable labeled port-numbered undirected graph.
//
// Adjacency is stored in compressed sparse row (CSR) form: all half-edges
// live in one contiguous slice, ordered by (node, port), and offsets[v]
// indexes the start of node v's ports. The layout keeps the simulation hot
// loop (port resolution during message delivery) on a single cache-friendly
// array instead of chasing per-node slice headers.
type Graph struct {
	labels []int64
	// halves holds every node's ports back to back: node v's port p is
	// halves[offsets[v]+p].
	halves []Half
	// offsets has n+1 entries; offsets[v+1]-offsets[v] is deg(v).
	offsets []int32
	byLabel map[int64]NodeID
	m       int

	portOnce sync.Once
	portIdx  *PortIndex
}

// N reports the number of nodes.
func (g *Graph) N() int { return len(g.labels) }

// M reports the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree reports the degree of v.
func (g *Graph) Degree(v NodeID) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Ports returns v's half-edges in port order as a view into the CSR
// storage. Callers must treat the slice as read-only.
func (g *Graph) Ports(v NodeID) []Half {
	return g.halves[g.offsets[v]:g.offsets[v+1]]
}

// Label reports the label of v.
func (g *Graph) Label(v NodeID) int64 { return g.labels[v] }

// NodeByLabel returns the node carrying the given label.
func (g *Graph) NodeByLabel(label int64) (NodeID, bool) {
	v, ok := g.byLabel[label]
	return v, ok
}

// Neighbor resolves port p at node v: it returns the neighbor u and the port
// number at u of the same edge.
func (g *Graph) Neighbor(v NodeID, p int) (NodeID, int) {
	h := g.halves[int(g.offsets[v])+p]
	return h.To, h.ToPort
}

// PortTo returns the port at u leading to v, or -1 if {u,v} is not an edge.
// It is a linear scan over u's ports; callers on hot paths should use
// PortIndex instead.
func (g *Graph) PortTo(u, v NodeID) int {
	for p, h := range g.Ports(u) {
		if h.To == v {
			return p
		}
	}
	return -1
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.PortTo(u, v) >= 0 }

// PortIndex answers PortTo queries in O(1) via a prebuilt map over all
// directed half-edges. Obtain one from Graph.PortIndex.
type PortIndex struct {
	ports map[uint64]int32
}

// PortIndex returns the graph's O(1) port lookup, building it on first use.
// The index is cached on the immutable graph, so concurrent callers share
// one instance.
func (g *Graph) PortIndex() *PortIndex {
	g.portOnce.Do(func() {
		ix := &PortIndex{ports: make(map[uint64]int32, len(g.halves))}
		for v := NodeID(0); int(v) < g.N(); v++ {
			for p, h := range g.Ports(v) {
				ix.ports[portKey(v, h.To)] = int32(p)
			}
		}
		g.portIdx = ix
	})
	return g.portIdx
}

func portKey(u, v NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// PortTo returns the port at u leading to v, or -1 if {u,v} is not an edge.
func (ix *PortIndex) PortTo(u, v NodeID) int {
	p, ok := ix.ports[portKey(u, v)]
	if !ok {
		return -1
	}
	return int(p)
}

// Edges returns all edges in canonical orientation, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	sorted := true
	for u := NodeID(0); int(u) < g.N(); u++ {
		for pu, h := range g.Ports(u) {
			if u < h.To {
				if sorted && len(edges) > 0 {
					last := edges[len(edges)-1]
					if last.U > u || (last.U == u && last.V > h.To) {
						sorted = false
					}
				}
				edges = append(edges, Edge{U: u, V: h.To, PU: pu, PV: h.ToPort})
			}
		}
	}
	// CSR iteration already ascends in U; skip the sort when the port
	// numbering happens to ascend in V too (paths, grids, trees, ...).
	if !sorted {
		slices.SortFunc(edges, func(a, b Edge) int {
			if a.U != b.U {
				return int(a.U - b.U)
			}
			return int(a.V - b.V)
		})
	}
	return edges
}

// MaxLabel returns the largest node label in the graph.
func (g *Graph) MaxLabel() int64 {
	var maxLabel int64
	for _, l := range g.labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	return maxLabel
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := NodeID(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// BFSResult holds a breadth-first search tree rooted at Root.
type BFSResult struct {
	Root NodeID
	// Parent[v] is v's BFS parent, or -1 for the root and unreachable nodes.
	Parent []NodeID
	// ParentPort[v] is the port at v of the edge to Parent[v], or -1.
	ParentPort []int
	// ChildPort[v] is the port at Parent[v] of the edge to v, or -1.
	ChildPort []int
	// Dist[v] is the hop distance from Root, or -1 if unreachable.
	Dist []int
	// Order lists reachable nodes in visit order (root first).
	Order []NodeID
}

// BFS runs a breadth-first search from root, scanning ports in increasing
// order so the result is deterministic.
func (g *Graph) BFS(root NodeID) *BFSResult {
	n := g.N()
	res := &BFSResult{
		Root:       root,
		Parent:     make([]NodeID, n),
		ParentPort: make([]int, n),
		ChildPort:  make([]int, n),
		Dist:       make([]int, n),
		Order:      make([]NodeID, 0, n),
	}
	for v := range res.Parent {
		res.Parent[v] = -1
		res.ParentPort[v] = -1
		res.ChildPort[v] = -1
		res.Dist[v] = -1
	}
	res.Dist[root] = 0
	queue := make([]NodeID, 1, n)
	queue[0] = root
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		for p, h := range g.Ports(v) {
			if res.Dist[h.To] >= 0 {
				continue
			}
			res.Dist[h.To] = res.Dist[v] + 1
			res.Parent[h.To] = v
			res.ParentPort[h.To] = h.ToPort
			res.ChildPort[h.To] = p
			queue = append(queue, h.To)
		}
	}
	return res
}

// Connected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.BFS(0).Order) == g.N()
}

// Eccentricity returns the largest BFS distance from v to any node,
// or -1 if some node is unreachable.
func (g *Graph) Eccentricity(v NodeID) int {
	res := g.BFS(v)
	ecc := 0
	for _, d := range res.Dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter by n BFS runs. Intended for test and
// experiment sizes.
func (g *Graph) Diameter() int {
	diam := 0
	for v := NodeID(0); int(v) < g.N(); v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// Validate re-checks the structural invariants: symmetric half-edges with
// consistent reverse ports, no self-loops, no parallel edges, distinct
// labels. Builders validate on construction; Validate exists for tests and
// for graphs produced by transformation code.
func (g *Graph) Validate() error {
	seen := make(map[int64]NodeID, g.N())
	for v := NodeID(0); int(v) < g.N(); v++ {
		if prev, dup := seen[g.labels[v]]; dup {
			return fmt.Errorf("graph: duplicate label %d on nodes %d and %d", g.labels[v], prev, v)
		}
		seen[g.labels[v]] = v
		neighbors := make(map[NodeID]bool, g.Degree(v))
		for p, h := range g.Ports(v) {
			if h.To == v {
				return fmt.Errorf("graph: self-loop at node %d port %d", v, p)
			}
			if h.To < 0 || int(h.To) >= g.N() {
				return fmt.Errorf("graph: node %d port %d points to invalid node %d", v, p, h.To)
			}
			if neighbors[h.To] {
				return fmt.Errorf("graph: parallel edge between %d and %d", v, h.To)
			}
			neighbors[h.To] = true
			if h.ToPort < 0 || h.ToPort >= g.Degree(h.To) {
				return fmt.Errorf("graph: node %d port %d has reverse port %d out of range at node %d", v, p, h.ToPort, h.To)
			}
			back := g.Ports(h.To)[h.ToPort]
			if back.To != v || back.ToPort != p {
				return fmt.Errorf("graph: asymmetric edge %d:%d <-> %d:%d", v, p, h.To, h.ToPort)
			}
		}
	}
	edgeCount := len(g.halves)
	if edgeCount != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with half-edge total %d", g.m, edgeCount)
	}
	return nil
}

// Builder assembles a Graph. Nodes are created up front; edges are attached
// either at explicit ports or at the next free port of each endpoint.
type Builder struct {
	labels []int64
	adj    [][]Half
	err    error
}

// NewBuilder creates a builder for n nodes, labeled 1..n by default
// (the paper's convention).
func NewBuilder(n int) *Builder {
	b := &Builder{
		labels: make([]int64, n),
		adj:    make([][]Half, n),
	}
	for v := range b.labels {
		b.labels[v] = int64(v) + 1
	}
	return b
}

// SetLabel overrides the label of v.
func (b *Builder) SetLabel(v NodeID, label int64) {
	if b.err != nil {
		return
	}
	if int(v) >= len(b.labels) {
		b.err = fmt.Errorf("graph: SetLabel on invalid node %d", v)
		return
	}
	b.labels[v] = label
}

// AddEdgeAuto connects u and v using the next free port at each endpoint.
func (b *Builder) AddEdgeAuto(u, v NodeID) {
	if b.err != nil {
		return
	}
	b.AddEdge(u, len(b.adj[u]), v, len(b.adj[v]))
}

// AddEdge connects u (at port pu) and v (at port pv). Ports may be assigned
// in any order but must form a contiguous 0..deg-1 range by the time Graph
// is called.
func (b *Builder) AddEdge(u NodeID, pu int, v NodeID, pv int) {
	if b.err != nil {
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at node %d", u)
		return
	}
	if int(u) >= len(b.adj) || int(v) >= len(b.adj) || u < 0 || v < 0 {
		b.err = fmt.Errorf("graph: AddEdge on invalid nodes %d, %d", u, v)
		return
	}
	b.growPorts(u, pu)
	b.growPorts(v, pv)
	if b.err != nil {
		return
	}
	if b.adj[u][pu].To != -1 {
		b.err = fmt.Errorf("graph: port %d at node %d already in use", pu, u)
		return
	}
	if b.adj[v][pv].To != -1 {
		b.err = fmt.Errorf("graph: port %d at node %d already in use", pv, v)
		return
	}
	b.adj[u][pu] = Half{To: v, ToPort: pv}
	b.adj[v][pv] = Half{To: u, ToPort: pu}
}

func (b *Builder) growPorts(v NodeID, p int) {
	if p < 0 {
		b.err = fmt.Errorf("graph: negative port %d at node %d", p, v)
		return
	}
	for len(b.adj[v]) <= p {
		b.adj[v] = append(b.adj[v], Half{To: -1})
	}
}

// Graph validates and returns the built graph.
func (b *Builder) Graph() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	m := 0
	for v := range b.adj {
		for p, h := range b.adj[v] {
			if h.To == -1 {
				return nil, fmt.Errorf("graph: unused port %d at node %d (ports must be contiguous)", p, v)
			}
		}
		m += len(b.adj[v])
	}
	if m%2 != 0 {
		return nil, errors.New("graph: internal error: odd half-edge count")
	}
	// Flatten the builder's per-node slices into CSR form.
	halves := make([]Half, 0, m)
	offsets := make([]int32, len(b.adj)+1)
	for v := range b.adj {
		offsets[v] = int32(len(halves))
		halves = append(halves, b.adj[v]...)
	}
	offsets[len(b.adj)] = int32(len(halves))
	g := &Graph{
		labels:  b.labels,
		halves:  halves,
		offsets: offsets,
		byLabel: make(map[int64]NodeID, len(b.labels)),
		m:       m / 2,
	}
	for v, l := range b.labels {
		g.byLabel[l] = NodeID(v)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGraph is Graph but panics on error; for generators whose inputs are
// internally validated.
func (b *Builder) MustGraph() *Graph {
	g, err := b.Graph()
	if err != nil {
		panic(err)
	}
	return g
}
