package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool over an integer index space. It is the one
// scheduler shared by campaign executions and cmd/benchtables -parallel:
// both fan their unit lists through Run.
type Pool struct {
	// Workers caps concurrency; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
}

// Run invokes fn(0..n-1) from at most p.Workers goroutines. After the
// first failure no new indices are handed out; in-flight calls finish.
// The returned error is the failing call with the smallest index, so the
// outcome is deterministic even though scheduling is not.
func (p Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	report := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
