package campaign

import (
	"reflect"
	"testing"

	"oraclesize/internal/graphgen"
)

// taskUnits returns the quick spec's task units (the ones the instance
// cache serves).
func taskUnits(t *testing.T) (*Spec, []Unit) {
	t.Helper()
	spec := QuickSpec()
	var units []Unit
	for _, u := range spec.Units() {
		if u.Kind == KindTask {
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		t.Fatal("quick spec has no task units")
	}
	return spec, units
}

// TestCacheDoesNotChangeRecords is the cache-transparency contract: every
// task unit must produce identical records (modulo WallNS) with a shared
// cache, with a cold cache, and with no cache at all — the cache is pure
// memoization of a deterministic function of InstanceSeed.
func TestCacheDoesNotChangeRecords(t *testing.T) {
	spec, units := taskUnits(t)
	hash := spec.Hash()
	shared := newInstanceCache(len(units))
	for _, u := range units {
		variants := []struct {
			label string
			cache *instanceCache
		}{
			{"uncached", nil},
			{"cold", newInstanceCache(1)},
			{"shared", shared},
		}
		var want []Record
		for _, v := range variants {
			recs, err := runUnit(spec, hash, u, v.cache)
			if err != nil {
				t.Fatalf("%s %s: %v", u.Key(), v.label, err)
			}
			for i := range recs {
				recs[i].WallNS = 0
			}
			if want == nil {
				want = recs
				continue
			}
			if !reflect.DeepEqual(want, recs) {
				t.Errorf("%s: %s records differ from uncached:\nuncached: %+v\n%s: %+v",
					u.Key(), v.label, want, v.label, recs)
			}
		}
	}
}

// TestSharedCacheAcrossSpecSeeds is the shared-cache reproducibility
// contract the oracled service relies on: one cache kept alive across
// campaigns with different spec seeds must produce exactly the records a
// private cache would. Units of the two specs agree on (family, n, trial)
// but not on InstanceSeed, so a cache keyed without the seed would serve
// the second spec the first spec's graphs.
func TestSharedCacheAcrossSpecSeeds(t *testing.T) {
	specA := QuickSpec()
	specB := QuickSpec()
	specB.Seed = specA.Seed + 1
	shared := newInstanceCache(256)
	for _, spec := range []*Spec{specA, specB} {
		hash := spec.Hash()
		for _, u := range spec.Units() {
			if u.Kind != KindTask {
				continue
			}
			got, err := runUnit(spec, hash, u, shared)
			if err != nil {
				t.Fatalf("seed %d %s shared: %v", spec.Seed, u.Key(), err)
			}
			want, err := runUnit(spec, hash, u, nil)
			if err != nil {
				t.Fatalf("seed %d %s uncached: %v", spec.Seed, u.Key(), err)
			}
			for i := range got {
				got[i].WallNS = 0
			}
			for i := range want {
				want[i].WallNS = 0
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: shared-cache records differ from uncached:\nshared:   %+v\nuncached: %+v",
					spec.Seed, u.Key(), got, want)
			}
		}
	}
}

// TestShardedCacheDoesNotChangeRecords extends the transparency contract
// to the sharded constructor the oracled service uses: task units run
// against a many-shard cache must produce exactly the records an
// unsharded (and an uncached) run would.
func TestShardedCacheDoesNotChangeRecords(t *testing.T) {
	spec, units := taskUnits(t)
	hash := spec.Hash()
	sharded := newShardedInstanceCache(len(units), 8)
	for _, u := range units {
		got, err := runUnit(spec, hash, u, sharded)
		if err != nil {
			t.Fatalf("%s sharded: %v", u.Key(), err)
		}
		want, err := runUnit(spec, hash, u, nil)
		if err != nil {
			t.Fatalf("%s uncached: %v", u.Key(), err)
		}
		for i := range got {
			got[i].WallNS = 0
		}
		for i := range want {
			want[i].WallNS = 0
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: sharded-cache records differ from uncached:\nsharded:  %+v\nuncached: %+v",
				u.Key(), got, want)
		}
	}
}

// TestShardedCacheSpreadsKeys sanity-checks the partitioning: distinct
// seeds land in more than one shard, and total capacity is preserved.
func TestShardedCacheSpreadsKeys(t *testing.T) {
	c := newShardedInstanceCache(64, 8)
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	fam, err := graphgen.FamilyByName("random-sparse")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 64; seed++ {
		if _, err := c.lookup(instanceKey{family: "random-sparse", n: 8, seed: seed}, fam); err != nil {
			t.Fatal(err)
		}
	}
	populated := 0
	total := 0
	for i := range c.shards {
		if n := len(c.shards[i].entries); n > 0 {
			populated++
			total += n
		}
	}
	if populated < 2 {
		t.Errorf("64 distinct keys landed in %d shard(s); hash is not spreading", populated)
	}
	if total > 64 {
		t.Errorf("sharded cache holds %d entries, capacity 64", total)
	}
	// Shard counts round up to a power of two and never exceed capacity.
	if got := len(newShardedInstanceCache(4, 100).shards); got != 4 {
		t.Errorf("shards(cap=4, want 100) = %d, want 4", got)
	}
	if got := len(newShardedInstanceCache(64, 5).shards); got != 8 {
		t.Errorf("shards(cap=64, want 5) = %d, want 8 (next power of two)", got)
	}
}

// TestEvictionOrderDoesNotLeak is the regression test for the FIFO order
// slice: the old order = order[1:] idiom let the backing array grow with
// every insertion ever made. Churning far more distinct instances than
// the capacity through the cache must leave both the entry map and the
// order slice's backing array bounded by the capacity, not the history.
func TestEvictionOrderDoesNotLeak(t *testing.T) {
	const capacity = 4
	c := newInstanceCache(capacity)
	fam, err := graphgen.FamilyByName("path")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10_000; seed++ {
		if _, err := c.lookup(instanceKey{family: "path", n: 4, seed: seed}, fam); err != nil {
			t.Fatal(err)
		}
	}
	s := &c.shards[0]
	if len(s.entries) > capacity {
		t.Errorf("entries = %d, want <= %d", len(s.entries), capacity)
	}
	// Compaction keeps the live window plus a bounded dead prefix; 4× the
	// capacity is generous headroom over the ~2× the implementation aims
	// for, while the old idiom would have accumulated thousands.
	if got := cap(s.order); got > 4*capacity {
		t.Errorf("order backing array holds %d slots after 10k insertions, want <= %d", got, 4*capacity)
	}
	if live := len(s.order) - s.head; live > capacity {
		t.Errorf("live order window = %d, want <= %d", live, capacity)
	}
}

// TestCacheHitMissAccounting checks that trials of the same instance hit
// the cache after the first miss, and that eviction only regenerates —
// never corrupts — an instance.
func TestCacheHitMissAccounting(t *testing.T) {
	spec, units := taskUnits(t)
	hash := spec.Hash()
	cache := newInstanceCache(len(units))
	seen := map[string]bool{}
	wantMisses := 0
	for _, u := range units {
		if !seen[u.InstanceKey()] {
			seen[u.InstanceKey()] = true
			wantMisses++
		}
		if _, err := runUnit(spec, hash, u, cache); err != nil {
			t.Fatalf("%s: %v", u.Key(), err)
		}
	}
	hits, misses := cache.hits.Load(), cache.misses.Load()
	if int(misses) != wantMisses {
		t.Errorf("misses = %d, want %d (one per distinct instance)", misses, wantMisses)
	}
	if int(hits) != len(units)-wantMisses {
		t.Errorf("hits = %d, want %d", hits, len(units)-wantMisses)
	}
	if len(units) > 1 && hits == 0 {
		t.Error("no cache hits across schemes sharing an instance")
	}
}
