package campaign

import (
	"reflect"
	"testing"
)

// taskUnits returns the quick spec's task units (the ones the instance
// cache serves).
func taskUnits(t *testing.T) (*Spec, []Unit) {
	t.Helper()
	spec := QuickSpec()
	var units []Unit
	for _, u := range spec.Units() {
		if u.Kind == KindTask {
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		t.Fatal("quick spec has no task units")
	}
	return spec, units
}

// TestCacheDoesNotChangeRecords is the cache-transparency contract: every
// task unit must produce identical records (modulo WallNS) with a shared
// cache, with a cold cache, and with no cache at all — the cache is pure
// memoization of a deterministic function of InstanceSeed.
func TestCacheDoesNotChangeRecords(t *testing.T) {
	spec, units := taskUnits(t)
	hash := spec.Hash()
	shared := newInstanceCache(len(units))
	for _, u := range units {
		variants := []struct {
			label string
			cache *instanceCache
		}{
			{"uncached", nil},
			{"cold", newInstanceCache(1)},
			{"shared", shared},
		}
		var want []Record
		for _, v := range variants {
			recs, err := runUnit(spec, hash, u, v.cache)
			if err != nil {
				t.Fatalf("%s %s: %v", u.Key(), v.label, err)
			}
			for i := range recs {
				recs[i].WallNS = 0
			}
			if want == nil {
				want = recs
				continue
			}
			if !reflect.DeepEqual(want, recs) {
				t.Errorf("%s: %s records differ from uncached:\nuncached: %+v\n%s: %+v",
					u.Key(), v.label, want, v.label, recs)
			}
		}
	}
}

// TestSharedCacheAcrossSpecSeeds is the shared-cache reproducibility
// contract the oracled service relies on: one cache kept alive across
// campaigns with different spec seeds must produce exactly the records a
// private cache would. Units of the two specs agree on (family, n, trial)
// but not on InstanceSeed, so a cache keyed without the seed would serve
// the second spec the first spec's graphs.
func TestSharedCacheAcrossSpecSeeds(t *testing.T) {
	specA := QuickSpec()
	specB := QuickSpec()
	specB.Seed = specA.Seed + 1
	shared := newInstanceCache(256)
	for _, spec := range []*Spec{specA, specB} {
		hash := spec.Hash()
		for _, u := range spec.Units() {
			if u.Kind != KindTask {
				continue
			}
			got, err := runUnit(spec, hash, u, shared)
			if err != nil {
				t.Fatalf("seed %d %s shared: %v", spec.Seed, u.Key(), err)
			}
			want, err := runUnit(spec, hash, u, nil)
			if err != nil {
				t.Fatalf("seed %d %s uncached: %v", spec.Seed, u.Key(), err)
			}
			for i := range got {
				got[i].WallNS = 0
			}
			for i := range want {
				want[i].WallNS = 0
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: shared-cache records differ from uncached:\nshared:   %+v\nuncached: %+v",
					spec.Seed, u.Key(), got, want)
			}
		}
	}
}

// TestCacheHitMissAccounting checks that trials of the same instance hit
// the cache after the first miss, and that eviction only regenerates —
// never corrupts — an instance.
func TestCacheHitMissAccounting(t *testing.T) {
	spec, units := taskUnits(t)
	hash := spec.Hash()
	cache := newInstanceCache(len(units))
	seen := map[string]bool{}
	wantMisses := 0
	for _, u := range units {
		if !seen[u.InstanceKey()] {
			seen[u.InstanceKey()] = true
			wantMisses++
		}
		if _, err := runUnit(spec, hash, u, cache); err != nil {
			t.Fatalf("%s: %v", u.Key(), err)
		}
	}
	hits, misses := cache.hits.Load(), cache.misses.Load()
	if int(misses) != wantMisses {
		t.Errorf("misses = %d, want %d (one per distinct instance)", misses, wantMisses)
	}
	if int(hits) != len(units)-wantMisses {
		t.Errorf("hits = %d, want %d", hits, len(units)-wantMisses)
	}
	if len(units) > 1 && hits == 0 {
		t.Error("no cache hits across schemes sharing an instance")
	}
}
