package campaign

import (
	"bytes"
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"
)

var wallField = regexp.MustCompile(`"wall_ns":\d+`)

func stripWall(jsonl []byte) string {
	return string(wallField.ReplaceAll(jsonl, []byte(`"wall_ns":0`)))
}

func runToBuffer(t *testing.T, spec *Spec, opts RunOptions) (*bytes.Buffer, Stats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := Run(spec, NewSink(&buf), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return &buf, stats
}

func TestRunDeterministicBytes(t *testing.T) {
	spec := QuickSpec()
	a, statsA := runToBuffer(t, spec, RunOptions{Workers: 4})
	b, statsB := runToBuffer(t, spec, RunOptions{Workers: 1})
	if statsA.Executed != statsA.Units || statsA.Executed != statsB.Executed {
		t.Fatalf("stats differ: %+v vs %+v", statsA, statsB)
	}
	if stripWall(a.Bytes()) != stripWall(b.Bytes()) {
		t.Error("same spec+seed produced different JSONL (modulo wall_ns)")
	}
	c, _ := runToBuffer(t, &Spec{
		Name: spec.Name, Seed: 99, Trials: spec.Trials,
		Families: spec.Families, Sizes: spec.Sizes, Tasks: spec.Tasks, Quick: true,
	}, RunOptions{Workers: 4})
	if stripWall(a.Bytes()) == stripWall(c.Bytes()) {
		t.Error("different seeds produced identical JSONL")
	}
}

func TestRunRecordsValidate(t *testing.T) {
	spec := QuickSpec()
	spec.Experiments = []string{"E5"}
	buf, stats := runToBuffer(t, spec, RunOptions{Workers: 4})
	recs, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(recs) != stats.Records || len(recs) == 0 {
		t.Fatalf("decoded %d records, stats say %d", len(recs), stats.Records)
	}
	hash := spec.Hash()
	tasks := map[string]bool{}
	families := map[string]bool{}
	sawExperiment := false
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
		if r.SpecHash != hash {
			t.Errorf("record %s carries hash %s, want %s", r.Unit, r.SpecHash, hash)
		}
		if r.Kind == KindTask {
			tasks[r.Task] = true
			families[r.Family] = true
		} else {
			sawExperiment = true
		}
	}
	if !tasks["wakeup"] || !tasks["broadcast"] || len(families) < 2 {
		t.Errorf("grid coverage wrong: tasks=%v families=%v", tasks, families)
	}
	if !sawExperiment {
		t.Error("no experiment replay records")
	}
}

func TestResumeCompletesExactlyMissingUnits(t *testing.T) {
	spec := QuickSpec()
	full, _ := runToBuffer(t, spec, RunOptions{Workers: 4})
	fullLines := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")

	// Simulated kill: keep the first 7 complete lines (quick spec task
	// units emit exactly one line each).
	partial := strings.Join(fullLines[:7], "\n") + "\n"
	done, partialRecs, err := LoadDone(strings.NewReader(partial))
	if err != nil {
		t.Fatalf("LoadDone: %v", err)
	}
	if len(done) != 7 || len(partialRecs) != 7 {
		t.Fatalf("partial sink: %d keys, %d records", len(done), len(partialRecs))
	}

	var resumed bytes.Buffer
	stats, err := Run(spec, NewSink(&resumed), RunOptions{Workers: 4, Done: done})
	if err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if stats.Skipped != 7 || stats.Executed != stats.Units-7 {
		t.Errorf("resume stats: %+v", stats)
	}
	combined := partial + resumed.String()
	if stripWall([]byte(combined)) != stripWall(full.Bytes()) {
		t.Error("partial + resume differs from an uninterrupted run (modulo wall_ns)")
	}
}

func TestResumeWithEverythingDoneRunsNothing(t *testing.T) {
	spec := QuickSpec()
	full, _ := runToBuffer(t, spec, RunOptions{Workers: 2})
	done, _, err := LoadDone(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := Run(spec, NewSink(&out), RunOptions{Workers: 2, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.Skipped != stats.Units || out.Len() != 0 {
		t.Errorf("no-op resume wrote %d bytes, stats %+v", out.Len(), stats)
	}
}

func TestLoadDoneToleratesTornLine(t *testing.T) {
	spec := QuickSpec()
	full, _ := runToBuffer(t, spec, RunOptions{Workers: 2})
	lines := strings.SplitAfter(full.String(), "\n")
	torn := strings.Join(lines[:3], "") + lines[3][:10] // cut mid-record
	done, recs, err := LoadDone(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("LoadDone on torn sink: %v", err)
	}
	if len(recs) != 3 || len(done) != 3 {
		t.Errorf("torn sink: %d records, %d keys, want 3 each", len(recs), len(done))
	}
}

func TestLoadDoneFileReportsValidPrefix(t *testing.T) {
	spec := QuickSpec()
	full, _ := runToBuffer(t, spec, RunOptions{Workers: 2})
	lines := strings.SplitAfter(full.String(), "\n")
	keep := strings.Join(lines[:4], "")
	torn := keep + lines[4][:12] // torn line 5

	path := t.TempDir() + "/results.jsonl"
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	done, recs, validLen, err := LoadDoneFile(path)
	if err != nil {
		t.Fatalf("LoadDoneFile: %v", err)
	}
	if len(done) != 4 || len(recs) != 4 {
		t.Errorf("done=%d recs=%d, want 4", len(done), len(recs))
	}
	if validLen != int64(len(keep)) {
		t.Errorf("validLen=%d, want %d (torn tail must be excluded)", validLen, len(keep))
	}

	// Missing file reads as empty.
	done, recs, validLen, err = LoadDoneFile(path + ".nonexistent")
	if err != nil || len(done) != 0 || recs != nil || validLen != 0 {
		t.Errorf("missing file: done=%v recs=%v len=%d err=%v", done, recs, validLen, err)
	}
}

func TestRunInvalidSpecFails(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(&Spec{Trials: 0}, NewSink(&buf), RunOptions{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSinkOrdersOutOfOrderDeposits(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	rec := func(unit string) []Record {
		return []Record{{SpecHash: "h", Unit: unit, Kind: KindTask, WallNS: 1}}
	}
	if err := s.Deposit(2, rec("u2")); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("sink flushed unit 2 before 0 and 1")
	}
	if err := s.Deposit(0, rec("u0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Deposit(1, nil); err != nil { // skipped unit
		t.Fatal(err)
	}
	if s.Flushed() != 3 || s.Written() != 2 {
		t.Errorf("flushed=%d written=%d", s.Flushed(), s.Written())
	}
	gotOrder := []string{}
	recs, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		gotOrder = append(gotOrder, r.Unit)
	}
	if len(gotOrder) != 2 || gotOrder[0] != "u0" || gotOrder[1] != "u2" {
		t.Errorf("flush order %v", gotOrder)
	}
	if err := s.Deposit(0, rec("dup")); err != nil {
		t.Errorf("duplicate deposit errored instead of deduping: %v", err)
	}
	if s.Deduped() != 1 || s.Written() != 2 {
		t.Errorf("deduped=%d written=%d after duplicate deposit", s.Deduped(), s.Written())
	}
}

func TestRecordValidateRejections(t *testing.T) {
	good := Record{
		SpecHash: "h", Unit: "task/x", Kind: KindTask,
		Task: "wakeup", Scheme: "tree", Family: "path",
		N: 16, Nodes: 16, Edges: 15, Complete: true,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"no hash", func(r *Record) { r.SpecHash = "" }},
		{"no unit", func(r *Record) { r.Unit = "" }},
		{"bad kind", func(r *Record) { r.Kind = "mystery" }},
		{"no family", func(r *Record) { r.Family = "" }},
		{"disconnected", func(r *Record) { r.Edges = 3 }},
		{"negative wall", func(r *Record) { r.WallNS = -1 }},
		{"negative messages", func(r *Record) { r.Messages = -1 }},
	}
	for _, tc := range cases {
		r := good
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	expBad := Record{SpecHash: "h", Unit: "experiment/E5/t0", Kind: KindExperiment}
	if err := expBad.Validate(); err == nil {
		t.Error("experiment record without ID accepted")
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestRunSurfacesSinkWriteError(t *testing.T) {
	spec := QuickSpec()
	_, err := Run(spec, NewSink(&failWriter{after: 2}), RunOptions{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("write error not surfaced: %v", err)
	}
}
