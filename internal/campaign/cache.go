package campaign

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/sim"
)

// instanceCache shares generated graph instances — and each oracle's advice
// on them — across the trials × schemes × tasks fan-out. Units that agree
// on (family, n, trial) run on one immutable instance instead of
// regenerating it per unit, which both removes the dominant per-unit cost
// and puts competing schemes on the exact same input.
//
// The cache is bounded: entries are evicted in insertion (FIFO) order once
// the capacity is exceeded. A unit that misses after eviction simply
// regenerates the instance from its seed, so cache state never affects
// results — only speed.
type instanceCache struct {
	mu      sync.Mutex
	entries map[string]*instanceEntry
	order   []string // insertion order, for FIFO eviction
	cap     int
	hits    atomic.Int64
	misses  atomic.Int64
}

func newInstanceCache(capacity int) *instanceCache {
	if capacity < 1 {
		capacity = 1
	}
	return &instanceCache{entries: make(map[string]*instanceEntry, capacity), cap: capacity}
}

// instanceEntry is one cached instance. The graph is generated at most once
// (workers that race on a fresh entry block on the Once); advice is
// computed at most once per (oracle name, source) under the entry lock.
// Both the graph and the advice map values are immutable after
// construction, so concurrent units may share them freely.
type instanceEntry struct {
	genOnce sync.Once
	g       *graph.Graph
	genErr  error

	mu     sync.Mutex
	advice map[string]adviceResult
}

type adviceResult struct {
	advice sim.Advice
	err    error
}

// lookup returns the entry stored under key, generating the graph on first
// use from the given seed.
func (c *instanceCache) lookup(key string, n int, seed int64, fam graphgen.Family) (*instanceEntry, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &instanceEntry{advice: make(map[string]adviceResult)}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.cap {
			// Evicting an entry another worker still holds is safe: their
			// pointer stays valid, the instance just stops being shared.
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.genOnce.Do(func() {
		rng := rand.New(rand.NewSource(seed))
		e.g, e.genErr = fam.Generate(n, rng)
	})
	return e, e.genErr
}

// instance returns the entry for u's graph instance, generating the graph
// on first use from the unit's instance seed. The cache key carries the
// seed rather than the trial index: within one spec the two are equivalent
// (InstanceSeed is a function of the spec seed and InstanceKey), but a
// cache shared across specs — the oracled service keeps one alive across
// campaign submissions — must not hand a unit from one spec a graph
// generated under another spec's seed, or cached runs would silently stop
// reproducing. The key format matches Cache.Instance, so campaign units
// and direct service requests that agree on (family, n, seed) share too.
func (c *instanceCache) instance(u Unit, fam graphgen.Family) (*instanceEntry, error) {
	key := fmt.Sprintf("instance/%s/n%d/s%d", u.Family, u.N, u.InstanceSeed)
	return c.lookup(key, u.N, u.InstanceSeed, fam)
}

// advise returns o's advice for the entry's graph, computed once per
// (oracle name, source). Oracles are deterministic in (graph, source), so
// the pair fully identifies the result; campaign units always use source 0,
// the serving path varies it.
func (e *instanceEntry) advise(o oracle.Oracle, source graph.NodeID) (sim.Advice, error) {
	key := fmt.Sprintf("%s@%d", o.Name(), source)
	e.mu.Lock()
	r, ok := e.advice[key]
	if !ok {
		r.advice, r.err = o.Advise(e.g, source)
		e.advice[key] = r
	}
	e.mu.Unlock()
	return r.advice, r.err
}

// CacheStats is a point-in-time snapshot of instance-cache effectiveness.
// Hits reused a shared graph instance; misses generated one. Cache state
// never affects record contents, only speed.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Lookups is the total number of instance resolutions.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses }

// HitRatio is Hits/Lookups, or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	if total := s.Lookups(); total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Sub returns the stats accumulated since an earlier snapshot.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - earlier.Hits, Misses: s.Misses - earlier.Misses}
}

// Cache is the exported handle on a bounded instance cache, for callers
// that keep one alive across many executions (the oracled service shares
// one between its request handlers and its campaign runs). The zero value
// is not usable; construct with NewCache.
type Cache struct {
	c *instanceCache
}

// NewCache returns a cache bounded to the given number of instances
// (minimum 1), evicted FIFO.
func NewCache(capacity int) *Cache {
	return &Cache{c: newInstanceCache(capacity)}
}

// Stats snapshots the cumulative hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.c.hits.Load(), Misses: c.c.misses.Load()}
}

// Instance resolves the cached instance of fam at the requested size and
// seed, generating it on first use. The returned Instance shares immutable
// state; it remains valid after eviction.
func (c *Cache) Instance(fam graphgen.Family, n int, seed int64) (*Instance, error) {
	key := fmt.Sprintf("instance/%s/n%d/s%d", fam.Name, n, seed)
	e, err := c.c.lookup(key, n, seed, fam)
	if err != nil {
		return nil, err
	}
	return &Instance{e: e}, nil
}

// Instance is one cached graph plus its memoized per-oracle advice.
type Instance struct {
	e *instanceEntry
}

// Graph returns the generated graph. Callers must treat it as immutable.
func (i *Instance) Graph() *graph.Graph { return i.e.g }

// Advice returns o's advice on the instance from the given source,
// computing it at most once per (oracle name, source).
func (i *Instance) Advice(o oracle.Oracle, source graph.NodeID) (sim.Advice, error) {
	return i.e.advise(o, source)
}
