package campaign

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/sim"
)

// instanceCache shares generated graph instances — and each oracle's advice
// on them — across the trials × schemes × tasks fan-out. Units that agree
// on (family, n, trial) run on one immutable instance instead of
// regenerating it per unit, which both removes the dominant per-unit cost
// and puts competing schemes on the exact same input.
//
// The cache is bounded: entries are evicted in insertion (FIFO) order once
// the capacity is exceeded. A unit that misses after eviction simply
// regenerates the instance from its seed, so cache state never affects
// results — only speed.
type instanceCache struct {
	mu      sync.Mutex
	entries map[string]*instanceEntry
	order   []string // insertion order, for FIFO eviction
	cap     int
	hits    atomic.Int64
	misses  atomic.Int64
}

func newInstanceCache(capacity int) *instanceCache {
	if capacity < 1 {
		capacity = 1
	}
	return &instanceCache{entries: make(map[string]*instanceEntry, capacity), cap: capacity}
}

// instanceEntry is one cached instance. The graph is generated at most once
// (workers that race on a fresh entry block on the Once); advice is
// computed at most once per oracle name under the entry lock. Both the
// graph and the advice map values are immutable after construction, so
// concurrent units may share them freely.
type instanceEntry struct {
	genOnce sync.Once
	g       *graph.Graph
	genErr  error

	mu     sync.Mutex
	advice map[string]adviceResult
}

type adviceResult struct {
	advice sim.Advice
	err    error
}

// instance returns the entry for u's (family, n, trial) instance,
// generating the graph on first use from the unit's instance seed.
func (c *instanceCache) instance(u Unit, fam graphgen.Family) (*instanceEntry, error) {
	key := u.InstanceKey()
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &instanceEntry{advice: make(map[string]adviceResult)}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.cap {
			// Evicting an entry another worker still holds is safe: their
			// pointer stays valid, the instance just stops being shared.
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.genOnce.Do(func() {
		rng := rand.New(rand.NewSource(u.InstanceSeed))
		e.g, e.genErr = fam.Generate(u.N, rng)
	})
	return e, e.genErr
}

// advise returns o's advice for the entry's graph, computed once per oracle
// name. Oracles are deterministic in (graph, source), and every task unit
// broadcasts from node 0, so the name fully identifies the result.
func (e *instanceEntry) advise(o oracle.Oracle, source graph.NodeID) (sim.Advice, error) {
	name := o.Name()
	e.mu.Lock()
	r, ok := e.advice[name]
	if !ok {
		r.advice, r.err = o.Advise(e.g, source)
		e.advice[name] = r
	}
	e.mu.Unlock()
	return r.advice, r.err
}
