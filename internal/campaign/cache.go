package campaign

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/sim"
)

// instanceCache shares generated graph instances — and each oracle's advice
// on them — across the trials × schemes × tasks fan-out. Units that agree
// on (family, n, trial) run on one immutable instance instead of
// regenerating it per unit, which both removes the dominant per-unit cost
// and puts competing schemes on the exact same input.
//
// The cache is bounded: entries are evicted in insertion (FIFO) order once
// the capacity is exceeded. A unit that misses after eviction simply
// regenerates the instance from its seed, so cache state never affects
// results — only speed.
//
// The key space is partitioned by hash into independently locked shards so
// concurrent lookups — the oracled serving path runs one per request —
// do not serialize on a single mutex. Capacity is divided evenly across
// shards and each shard evicts FIFO on its own; a sharded cache may
// therefore evict an entry a single-shard cache of the same total capacity
// would have kept (and vice versa), which by the regeneration contract
// above is a speed difference, never a correctness one.
type instanceCache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// instanceKey identifies one cached instance without string formatting:
// the triple is the generation function's full input. The textual form
// "instance/<family>/n<n>/s<seed>" used in logs corresponds 1:1.
type instanceKey struct {
	family string
	n      int
	seed   int64
}

// hash is FNV-1a over the key's fields, used for shard selection.
func (k instanceKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.family); i++ {
		h ^= uint64(k.family[i])
		h *= prime64
	}
	h ^= uint64(k.n)
	h *= prime64
	h ^= uint64(k.seed)
	h *= prime64
	return h
}

// cacheShard is one independently locked slice of the key space. Eviction
// order is tracked as order[head:]; evicting advances head instead of
// re-slicing, and the dead prefix is periodically compacted in place so
// the backing array stays bounded by ~2× the shard capacity (the old
// order = order[1:] idiom pinned every appended backing array forever).
type cacheShard struct {
	mu      sync.Mutex
	entries map[instanceKey]*instanceEntry
	order   []instanceKey
	head    int
	cap     int
}

func newInstanceCache(capacity int) *instanceCache {
	return newShardedInstanceCache(capacity, 1)
}

// newShardedInstanceCache spreads capacity over the given shard count,
// rounded up to a power of two and capped so every shard holds at least
// one entry.
func newShardedInstanceCache(capacity, shards int) *instanceCache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	c := &instanceCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].entries = make(map[instanceKey]*instanceEntry, per)
		c.shards[i].cap = per
	}
	return c
}

// instanceEntry is one cached instance. The graph is generated at most once
// (workers that race on a fresh entry block on the Once); advice is
// computed at most once per (oracle name, source). The advice map is
// copy-on-write: readers load it with a single atomic and never lock, and
// the rare writer clones it under adviceMu. Both the graph and the advice
// values are immutable after construction, so concurrent units may share
// them freely.
type instanceEntry struct {
	genOnce sync.Once
	g       *graph.Graph
	genErr  error

	advice   atomic.Pointer[map[adviceKey]adviceResult]
	adviceMu sync.Mutex // serializes advice writers
}

// adviceKey identifies one memoized advice computation. Oracles are
// deterministic in (graph, source), so the pair fully identifies the
// result; campaign units always use source 0, the serving path varies it.
type adviceKey struct {
	oracle string
	source graph.NodeID
}

type adviceResult struct {
	advice sim.Advice
	err    error
}

// lookup returns the entry stored under key, generating the graph on first
// use from the key's seed.
func (c *instanceCache) lookup(key instanceKey, fam graphgen.Family) (*instanceEntry, error) {
	s := &c.shards[key.hash()&c.mask]
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &instanceEntry{}
		s.entries[key] = e
		s.order = append(s.order, key)
		if len(s.order)-s.head > s.cap {
			// Evicting an entry another worker still holds is safe: their
			// pointer stays valid, the instance just stops being shared.
			delete(s.entries, s.order[s.head])
			s.order[s.head] = instanceKey{} // drop the family string reference
			s.head++
			if s.head > s.cap {
				n := copy(s.order, s.order[s.head:])
				s.order = s.order[:n]
				s.head = 0
			}
		}
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.genOnce.Do(func() {
		rng := rand.New(rand.NewSource(key.seed))
		e.g, e.genErr = fam.Generate(key.n, rng)
	})
	return e, e.genErr
}

// instance returns the entry for u's graph instance, generating the graph
// on first use from the unit's instance seed. The cache key carries the
// seed rather than the trial index: within one spec the two are equivalent
// (InstanceSeed is a function of the spec seed and InstanceKey), but a
// cache shared across specs — the oracled service keeps one alive across
// campaign submissions — must not hand a unit from one spec a graph
// generated under another spec's seed, or cached runs would silently stop
// reproducing. The key matches Cache.Instance, so campaign units and
// direct service requests that agree on (family, n, seed) share too.
func (c *instanceCache) instance(u Unit, fam graphgen.Family) (*instanceEntry, error) {
	return c.lookup(instanceKey{family: u.Family, n: u.N, seed: u.InstanceSeed}, fam)
}

// advise returns o's advice for the entry's graph, computed once per
// (oracle name, source). The read path is a single atomic load plus a map
// lookup — no lock — so steady-state serving never contends here.
func (e *instanceEntry) advise(o oracle.Oracle, source graph.NodeID) (sim.Advice, error) {
	key := adviceKey{oracle: o.Name(), source: source}
	if m := e.advice.Load(); m != nil {
		if r, ok := (*m)[key]; ok {
			return r.advice, r.err
		}
	}
	e.adviceMu.Lock()
	defer e.adviceMu.Unlock()
	old := e.advice.Load()
	if old != nil {
		if r, ok := (*old)[key]; ok {
			return r.advice, r.err
		}
	}
	var r adviceResult
	r.advice, r.err = o.Advise(e.g, source)
	size := 1
	if old != nil {
		size += len(*old)
	}
	next := make(map[adviceKey]adviceResult, size)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = r
	e.advice.Store(&next)
	return r.advice, r.err
}

// CacheStats is a point-in-time snapshot of instance-cache effectiveness.
// Hits reused a shared graph instance; misses generated one. Cache state
// never affects record contents, only speed.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Lookups is the total number of instance resolutions.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses }

// HitRatio is Hits/Lookups, or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	if total := s.Lookups(); total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Sub returns the stats accumulated since an earlier snapshot.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - earlier.Hits, Misses: s.Misses - earlier.Misses}
}

// Cache is the exported handle on a bounded instance cache, for callers
// that keep one alive across many executions (the oracled service shares
// one between its request handlers and its campaign runs). The zero value
// is not usable; construct with NewCache or NewShardedCache.
type Cache struct {
	c *instanceCache
}

// NewCache returns a cache bounded to the given number of instances
// (minimum 1), evicted FIFO, with a single lock — the right shape for a
// worker pool that looks instances up once per unit. Concurrent servers
// should use NewShardedCache.
func NewCache(capacity int) *Cache {
	return &Cache{c: newInstanceCache(capacity)}
}

// NewShardedCache returns a cache whose key space is partitioned into the
// given number of independently locked shards (rounded up to a power of
// two, at most capacity), with total capacity divided evenly across them.
// Sharding changes which entries survive eviction pressure, never any
// record contents.
func NewShardedCache(capacity, shards int) *Cache {
	return &Cache{c: newShardedInstanceCache(capacity, shards)}
}

// Stats snapshots the cumulative hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.c.hits.Load(), Misses: c.c.misses.Load()}
}

// Instance resolves the cached instance of fam at the requested size and
// seed, generating it on first use. The returned Instance shares immutable
// state; it remains valid after eviction.
func (c *Cache) Instance(fam graphgen.Family, n int, seed int64) (*Instance, error) {
	e, err := c.c.lookup(instanceKey{family: fam.Name, n: n, seed: seed}, fam)
	if err != nil {
		return nil, err
	}
	return &Instance{e: e}, nil
}

// Instance is one cached graph plus its memoized per-oracle advice.
type Instance struct {
	e *instanceEntry
}

// Graph returns the generated graph. Callers must treat it as immutable.
func (i *Instance) Graph() *graph.Graph { return i.e.g }

// Advice returns o's advice on the instance from the given source,
// computing it at most once per (oracle name, source).
func (i *Instance) Advice(o oracle.Oracle, source graph.NodeID) (sim.Advice, error) {
	return i.e.advise(o, source)
}
