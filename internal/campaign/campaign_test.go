package campaign

import (
	"math"
	"strings"
	"testing"
)

func TestQuickSpecValidates(t *testing.T) {
	if err := QuickSpec().Validate(); err != nil {
		t.Fatalf("quick spec invalid: %v", err)
	}
}

func TestSpecHashStableAndSensitive(t *testing.T) {
	a, b := QuickSpec(), QuickSpec()
	if a.Hash() != b.Hash() {
		t.Error("equal specs hash differently")
	}
	b.Seed = 2
	if a.Hash() == b.Hash() {
		t.Error("seed change did not change the hash")
	}
	c := QuickSpec()
	c.Sizes = append(c.Sizes, 64)
	if a.Hash() == c.Hash() {
		t.Error("grid change did not change the hash")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"zero trials", func(s *Spec) { s.Trials = 0 }, "trials"},
		{"unknown family", func(s *Spec) { s.Families[0] = "moebius" }, "unknown family"},
		{"tiny size", func(s *Spec) { s.Sizes[0] = 1 }, "sizes must be >= 2"},
		{"unknown task", func(s *Spec) { s.Tasks[0].Task = "leader" }, "unknown task"},
		{"unknown scheme", func(s *Spec) { s.Tasks[0].Schemes = []string{"psychic"} }, "no scheme"},
		{"unknown experiment", func(s *Spec) { s.Experiments = []string{"E99"} }, "unknown experiment"},
		{"empty spec", func(s *Spec) { s.Tasks = nil }, "no tasks and no experiments"},
		{"tasks without families", func(s *Spec) { s.Families = nil }, "at least one family"},
		{"tasks without sizes", func(s *Spec) { s.Sizes = nil }, "at least one size"},
	}
	for _, tc := range cases {
		s := QuickSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "mini", "seed": 7, "trials": 1,
		"families": ["path"], "sizes": [8],
		"tasks": [{"task": "broadcast"}],
		"experiments": ["E5"], "quick": true
	}`)
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "mini" || s.Seed != 7 || !s.Quick {
		t.Errorf("parsed spec wrong: %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"trials": 0}`)); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := ParseSpec([]byte(`{broken`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestUnitsDeterministicAndUnique(t *testing.T) {
	spec := QuickSpec()
	spec.Experiments = []string{"E5"}
	a, b := spec.Units(), spec.Units()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("unit counts differ: %d vs %d", len(a), len(b))
	}
	// quick grid: 2 tasks × 2 families × 2 sizes × 2 schemes × 2 trials + 1 experiment
	if want := 2*2*2*2*2 + 1; len(a) != want {
		t.Errorf("got %d units, want %d", len(a), want)
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unit %d differs between compilations: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Errorf("unit %d has index %d", i, a[i].Index)
		}
		if seen[a[i].Key()] {
			t.Errorf("duplicate unit key %s", a[i].Key())
		}
		seen[a[i].Key()] = true
	}
}

// TestUnitCountMatchesUnits pins UnitCount to len(Units()) across the spec
// shapes Units handles specially (explicit schemes, default schemes,
// experiment replays), and checks that absurd trial counts saturate
// instead of overflowing — callers use UnitCount to reject such specs
// before compiling them.
func TestUnitCountMatchesUnits(t *testing.T) {
	withExperiments := QuickSpec()
	withExperiments.Experiments = []string{"E5"}
	defaultSchemes := QuickSpec()
	defaultSchemes.Tasks = []TaskSpec{{Task: "wakeup"}}
	for name, spec := range map[string]*Spec{
		"quick":           QuickSpec(),
		"experiments":     withExperiments,
		"default schemes": defaultSchemes,
	} {
		if got, want := spec.UnitCount(), int64(len(spec.Units())); got != want {
			t.Errorf("%s: UnitCount() = %d, len(Units()) = %d", name, got, want)
		}
	}
	huge := QuickSpec()
	huge.Trials = math.MaxInt64 / 2
	if got := huge.UnitCount(); got != math.MaxInt64 {
		t.Errorf("huge spec: UnitCount() = %d, want saturation at MaxInt64", got)
	}
}

func TestUnitsDefaultSchemes(t *testing.T) {
	spec := QuickSpec()
	spec.Tasks = []TaskSpec{{Task: "wakeup"}} // no schemes → all registered
	units := spec.Units()
	schemes := make(map[string]bool)
	for _, u := range units {
		schemes[u.Scheme] = true
	}
	if !schemes["tree"] || !schemes["flooding"] {
		t.Errorf("default schemes missing: %v", schemes)
	}
}

func TestUnitSeedsIndependent(t *testing.T) {
	spec := QuickSpec()
	units := spec.Units()
	seeds := make(map[int64]string)
	for _, u := range units {
		if prev, dup := seeds[u.Seed]; dup {
			t.Errorf("seed collision between %s and %s", prev, u.Key())
		}
		seeds[u.Seed] = u.Key()
	}
	spec.Seed = 2
	for i, u := range spec.Units() {
		if u.Seed == units[i].Seed {
			t.Errorf("unit %s seed unchanged under new spec seed", u.Key())
		}
	}
}

func TestTaskRegistry(t *testing.T) {
	names := Tasks()
	if len(names) < 2 {
		t.Fatalf("want at least wakeup+broadcast, got %v", names)
	}
	for _, name := range names {
		schemes, err := Schemes(name)
		if err != nil || len(schemes) == 0 {
			t.Errorf("task %s: schemes=%v err=%v", name, schemes, err)
		}
	}
	if _, err := Schemes("nonesuch"); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRunTaskUnitWakeupTreeExact(t *testing.T) {
	spec := QuickSpec()
	units := spec.Units()
	var unit Unit
	found := false
	for _, u := range units {
		if u.Task == "wakeup" && u.Scheme == "tree" && u.Family == "path" && u.N == 16 && u.Trial == 0 {
			unit, found = u, true
		}
	}
	if !found {
		t.Fatal("expected unit not compiled")
	}
	recs, err := runUnit(spec, spec.Hash(), unit, newInstanceCache(4))
	if err != nil {
		t.Fatalf("runUnit: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("task unit produced %d records", len(recs))
	}
	r := recs[0]
	// Theorem 2.1: the wakeup tree scheme uses exactly n-1 messages.
	if r.Messages != 15 || !r.Complete || r.Nodes != 16 {
		t.Errorf("wakeup/tree on path n=16: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("record invalid: %v", err)
	}
}
