package campaign

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestShardsPartitionExactly(t *testing.T) {
	cases := []struct{ total, size, want int }{
		{0, 4, 0}, {-1, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{16, 4, 4}, {17, 4, 5}, {7, 0, 7}, {7, -3, 7},
	}
	for _, c := range cases {
		shards := Shards(c.total, c.size)
		if len(shards) != c.want {
			t.Errorf("Shards(%d,%d): %d shards, want %d", c.total, c.size, len(shards), c.want)
			continue
		}
		covered := 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Errorf("Shards(%d,%d): shard %d has Index %d", c.total, c.size, i, sh.Index)
			}
			if sh.Start != covered || sh.Len() < 1 {
				t.Errorf("Shards(%d,%d): %v does not continue at %d", c.total, c.size, sh, covered)
			}
			covered = sh.End
		}
		if c.total > 0 && covered != c.total {
			t.Errorf("Shards(%d,%d): covered %d units", c.total, c.size, covered)
		}
	}
}

// TestRunShardMatchesRun is the distribution determinism contract at the
// package level: executing a spec shard by shard — any shard size, any
// completion order, with duplicate deliveries — merges to the same bytes
// as one local Run.
func TestRunShardMatchesRun(t *testing.T) {
	spec := QuickSpec()
	ref, _ := runToBuffer(t, spec, RunOptions{Workers: 4})

	units := spec.Units()
	for _, size := range []int{1, 3, len(units)} {
		shards := Shards(len(units), size)
		rng := rand.New(rand.NewSource(int64(size)))
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

		var buf bytes.Buffer
		sink := NewSink(&buf)
		cache := NewCache(16)
		for _, sh := range shards {
			batches, err := RunShard(spec, units, sh, cache)
			if err != nil {
				t.Fatalf("size %d: RunShard(%v): %v", size, sh, err)
			}
			if len(batches) != sh.Len() {
				t.Fatalf("size %d: %v returned %d batches", size, sh, len(batches))
			}
			for off, recs := range batches {
				if err := sink.Deposit(sh.Start+off, recs); err != nil {
					t.Fatalf("size %d: deposit: %v", size, err)
				}
			}
			// A hedged duplicate of the same shard must merge to nothing.
			if sh.Index%2 == 0 {
				dup, err := RunShard(spec, units, sh, nil)
				if err != nil {
					t.Fatalf("size %d: duplicate RunShard(%v): %v", size, sh, err)
				}
				for off, recs := range dup {
					if err := sink.Deposit(sh.Start+off, recs); err != nil {
						t.Fatalf("size %d: duplicate deposit: %v", size, err)
					}
				}
			}
		}
		if stripWall(buf.Bytes()) != stripWall(ref.Bytes()) {
			t.Errorf("shard size %d: merged JSONL differs from local run", size)
		}
		if sink.Deduped() == 0 {
			t.Errorf("shard size %d: duplicate deposits were not deduped", size)
		}
	}
}

func TestRunShardRejectsBadRange(t *testing.T) {
	spec := QuickSpec()
	units := spec.Units()
	for _, sh := range []Shard{
		{Start: -1, End: 1}, {Start: 0, End: 0}, {Start: 2, End: 1},
		{Start: 0, End: len(units) + 1},
	} {
		if _, err := RunShard(spec, units, sh, nil); err == nil {
			t.Errorf("RunShard accepted %v over %d units", sh, len(units))
		}
	}
}

func TestCanonicalizeOrdersAndStrips(t *testing.T) {
	recs := []Record{
		{SpecHash: "h", Unit: "task/b", Kind: KindTask, WallNS: 7},
		{SpecHash: "h", Unit: "experiment/E5/t0", Kind: KindExperiment, Row: 1, WallNS: 9},
		{SpecHash: "h", Unit: "experiment/E5/t0", Kind: KindExperiment, Row: 0, WallNS: 9},
		{SpecHash: "h", Unit: "task/a", Kind: KindTask, WallNS: 3},
	}
	canon := Canonicalize(recs)
	if recs[0].WallNS != 7 {
		t.Error("Canonicalize mutated its input")
	}
	wantUnits := []string{"experiment/E5/t0", "experiment/E5/t0", "task/a", "task/b"}
	for i, r := range canon {
		if r.Unit != wantUnits[i] || r.WallNS != 0 {
			t.Errorf("canon[%d] = {%s row=%d wall=%d}, want unit %s wall 0",
				i, r.Unit, r.Row, r.WallNS, wantUnits[i])
		}
	}
	if canon[0].Row != 0 || canon[1].Row != 1 {
		t.Errorf("experiment rows out of order: %d then %d", canon[0].Row, canon[1].Row)
	}
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, canon); err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	decoded, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
	if err != nil || len(decoded) != len(canon) {
		t.Fatalf("round trip: %d records, err %v", len(decoded), err)
	}
}

// TestCanonicalizeEquatesShuffledStreams covers the cross-file comparison
// cluster-smoke relies on: a merged distributed artifact and a local
// artifact canonicalize to identical bytes even though sink order differs.
func TestCanonicalizeEquatesShuffledStreams(t *testing.T) {
	spec := QuickSpec()
	buf, _ := runToBuffer(t, spec, RunOptions{Workers: 2})
	recs, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]Record(nil), recs...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var a, b bytes.Buffer
	if err := EncodeRecords(&a, Canonicalize(recs)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeRecords(&b, Canonicalize(shuffled)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("canonical bytes differ between orderings of the same records")
	}
}
