package campaign

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// quickRecords runs the quick spec once and returns its records plus the
// per-unit batches, the raw material for the property tests below.
func quickRecords(t *testing.T) (*Spec, []Record, [][]Record) {
	t.Helper()
	spec := QuickSpec()
	var buf bytes.Buffer
	if _, err := Run(spec, NewSink(&buf), RunOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	units := spec.Units()
	batches := make([][]Record, len(units))
	for _, r := range recs {
		for i, u := range units {
			if u.Key() == r.Unit {
				batches[i] = append(batches[i], r)
				break
			}
		}
	}
	return spec, recs, batches
}

// TestCanonicalizeIdempotentAndOrderInsensitive checks the two properties
// the byte-identity contract leans on: canonicalizing twice changes
// nothing, and the input order of records never shows in the output.
func TestCanonicalizeIdempotentAndOrderInsensitive(t *testing.T) {
	_, recs, _ := quickRecords(t)
	if len(recs) == 0 {
		t.Fatal("quick spec produced no records")
	}
	want := Canonicalize(recs)
	if again := Canonicalize(want); !reflect.DeepEqual(again, want) {
		t.Fatal("Canonicalize is not idempotent")
	}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shuffled := append([]Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := Canonicalize(shuffled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: canonical form depends on input order", seed)
		}
	}
	// Canonicalize must not mutate its input: the shuffles above would be
	// meaningless if it sorted in place.
	var buf1, buf2 bytes.Buffer
	if err := EncodeRecords(&buf1, recs); err != nil {
		t.Fatal(err)
	}
	_ = Canonicalize(recs)
	if err := EncodeRecords(&buf2, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("Canonicalize mutated its input")
	}
}

// TestSinkIdempotentUnderShuffledDuplicateReplays deposits every unit
// several times in random orders — the mess hedged dispatches, reassigned
// leases and resumed runs produce — and requires the byte stream to match
// a clean in-order run exactly, with every duplicate counted.
func TestSinkIdempotentUnderShuffledDuplicateReplays(t *testing.T) {
	_, _, batches := quickRecords(t)

	var want bytes.Buffer
	clean := NewSink(&want)
	for i, recs := range batches {
		if err := clean.Deposit(i, recs); err != nil {
			t.Fatal(err)
		}
	}
	if clean.Deduped() != 0 {
		t.Fatalf("clean run deduped %d deposits", clean.Deduped())
	}

	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Each unit appears 2-3 times; later copies must all drop.
		var order []int
		for i := range batches {
			for c := 0; c < 2+rng.Intn(2); c++ {
				order = append(order, i)
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		var got bytes.Buffer
		sink := NewSink(&got)
		for _, i := range order {
			if err := sink.Deposit(i, batches[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("seed %d: replayed deposits changed the byte stream", seed)
		}
		if wantDup := len(order) - len(batches); sink.Deduped() != wantDup {
			t.Fatalf("seed %d: deduped %d deposits, want %d", seed, sink.Deduped(), wantDup)
		}
		if sink.Flushed() != len(batches) || sink.Written() != clean.Written() {
			t.Fatalf("seed %d: flushed %d units / %d records, want %d / %d",
				seed, sink.Flushed(), sink.Written(), len(batches), clean.Written())
		}
	}
}
