package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// streamFixture renders n synthetic task records as JSONL.
func streamFixture(t testing.TB, n int) ([]Record, []byte) {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			SpecHash: "hash",
			Unit:     fmt.Sprintf("task/broadcast/flooding/path/n8/t0/u%04d", i),
			Kind:     KindTask,
			Seed:     int64(i),
			Task:     "broadcast",
			Scheme:   "flooding",
			Family:   "path",
			N:        8,
			Complete: true,
		}
	}
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return recs, buf.Bytes()
}

func TestStreamRecordsMatchesDecode(t *testing.T) {
	recs, data := streamFixture(t, 40)
	want, err := DecodeRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := StreamRecords(bytes.NewReader(data), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != len(recs) {
		t.Fatalf("streamed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Unit != want[i].Unit || got[i].Seed != want[i].Seed {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestStreamRecordsRejectsMalformedLine(t *testing.T) {
	_, data := streamFixture(t, 3)
	corrupt := append(append([]byte(nil), data...), []byte("{torn")...)
	err := StreamRecords(bytes.NewReader(corrupt), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("torn tail accepted or misattributed: %v", err)
	}
}

func TestStreamRecordsSkipsEmptyLines(t *testing.T) {
	_, data := streamFixture(t, 2)
	spaced := bytes.ReplaceAll(data, []byte("\n"), []byte("\n\n"))
	n := 0
	if err := StreamRecords(bytes.NewReader(spaced), func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("streamed %d records, want 2", n)
	}
}

func TestScanDoneToleratesTornTail(t *testing.T) {
	recs, data := streamFixture(t, 5)
	torn := append(append([]byte(nil), data...), data[:25]...) // partial 6th line, no newline

	done, specHash, validLen, err := ScanDone(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if specHash != "hash" {
		t.Errorf("specHash = %q", specHash)
	}
	if validLen != int64(len(data)) {
		t.Errorf("validLen = %d, want %d (torn tail excluded)", validLen, len(data))
	}
	if len(done) != len(recs) {
		t.Fatalf("done holds %d units, want %d", len(done), len(recs))
	}
	for _, r := range recs {
		if !done[r.Unit] {
			t.Errorf("unit %s missing from done set", r.Unit)
		}
	}
}

func TestScanDoneStopsAtMalformedLine(t *testing.T) {
	_, data := streamFixture(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// A malformed-but-terminated line in the middle ends the valid prefix.
	mangled := append(append([]byte(nil), bytes.Join(lines[:2], nil)...), []byte("not json\n")...)
	mangled = append(mangled, bytes.Join(lines[2:], nil)...)

	done, _, validLen, err := ScanDone(bytes.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Errorf("done holds %d units, want 2", len(done))
	}
	wantLen := len(lines[0]) + len(lines[1])
	if validLen != int64(wantLen) {
		t.Errorf("validLen = %d, want %d", validLen, wantLen)
	}
}

func TestScanDoneFileMissingReadsEmpty(t *testing.T) {
	done, specHash, validLen, err := ScanDoneFile(t.TempDir() + "/absent.jsonl")
	if err != nil || len(done) != 0 || specHash != "" || validLen != 0 {
		t.Errorf("missing file: done=%v hash=%q len=%d err=%v", done, specHash, validLen, err)
	}
}

// TestStreamingAllocBudget is the allocation budget for the streaming
// readers: per-record allocations must be bounded by a constant — the
// line scanner reuses one scratch buffer, so doubling the artifact
// doubles total allocations but never the per-record cost, where the
// slurping DecodeRecords path retains every record it parses.
func TestStreamingAllocBudget(t *testing.T) {
	const n = 500
	_, data := streamFixture(t, n)

	// ScanDone parses two fields per line into a reused struct.
	scanAllocs := testing.AllocsPerRun(10, func() {
		done, _, _, err := ScanDone(bytes.NewReader(data))
		if err != nil || len(done) != n {
			t.Fatalf("scan: %d units, err %v", len(done), err)
		}
	})
	if per := scanAllocs / n; per > 8 {
		t.Errorf("ScanDone allocates %.1f objects per record, budget 8", per)
	}

	// StreamRecords fully decodes each record but retains none.
	streamAllocs := testing.AllocsPerRun(10, func() {
		if err := StreamRecords(bytes.NewReader(data), func(Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	if per := streamAllocs / n; per > 24 {
		t.Errorf("StreamRecords allocates %.1f objects per record, budget 24", per)
	}
}
