package campaign

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// RunOptions configure one campaign execution.
type RunOptions struct {
	// Workers caps pool concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// Done marks unit keys already present in the sink; those units are
	// skipped (resume semantics). Nil means run everything.
	Done map[string]bool
	// Cache, if non-nil, is a shared instance cache to run against (the
	// oracled service pools one across campaigns and request handlers). Nil
	// means a private, appropriately sized cache per execution.
	Cache *Cache
	// Progress, if non-nil, is called after each unit flushes or is
	// skipped, with the number of handled units and the total.
	Progress func(done, total int)
}

// Stats summarizes a completed execution.
type Stats struct {
	// Units is the compiled unit count.
	Units int
	// Executed counts units actually run (Units minus skipped).
	Executed int
	// Skipped counts units satisfied by the existing sink.
	Skipped int
	// Records counts JSONL records written this execution.
	Records int
	// CacheHits and CacheMisses count instance-cache lookups: hits reused
	// a shared graph instance, misses generated one. Cache state never
	// affects record contents, only speed.
	CacheHits   int64
	CacheMisses int64
}

// Run validates the spec, compiles its units, executes the ones not
// already Done on a bounded pool, and deposits records into the store —
// a JSONL Sink flushing in unit order, or a warehouse. On error the
// store still holds a consistent subset of units, so a later Run with
// Done loaded from it completes exactly the missing units.
func Run(spec *Spec, sink Store, opts RunOptions) (Stats, error) {
	if err := spec.Validate(); err != nil {
		return Stats{}, err
	}
	units := spec.Units()
	specHash := spec.Hash()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The unit order revisits an instance across schemes after at most
	// Trials intervening units, so Trials entries plus in-flight slack keeps
	// the scheme fan-out at a ~100% hit rate without unbounded growth.
	cache := opts.Cache
	if cache == nil {
		cache = NewCache(spec.Trials + 2*workers + 8)
	}
	before := cache.Stats()
	var executed, skipped atomic.Int64
	err := Pool{Workers: opts.Workers}.Run(len(units), func(i int) error {
		u := units[i]
		if opts.Done[u.Key()] {
			skipped.Add(1)
			if err := sink.Deposit(i, nil); err != nil {
				return err
			}
		} else {
			recs, err := runUnit(spec, specHash, u, cache.c)
			if err != nil {
				return fmt.Errorf("campaign: unit %s: %w", u.Key(), err)
			}
			executed.Add(1)
			if err := sink.Deposit(i, recs); err != nil {
				return err
			}
		}
		if opts.Progress != nil {
			opts.Progress(sink.Flushed(), len(units))
		}
		return nil
	})
	// Report this execution's share of the (possibly shared) cache counters.
	delta := cache.Stats().Sub(before)
	stats := Stats{
		Units:       len(units),
		Executed:    int(executed.Load()),
		Skipped:     int(skipped.Load()),
		Records:     sink.Written(),
		CacheHits:   delta.Hits,
		CacheMisses: delta.Misses,
	}
	return stats, err
}
