package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Record is one self-describing JSONL line. Task units emit exactly one;
// experiment units emit one per table row, all sharing the unit key and
// written atomically. Field order (Go struct order) and map-key sorting in
// encoding/json make encoding deterministic; WallNS is the only
// nondeterministic field.
type Record struct {
	// SpecHash ties the record to the spec that produced it.
	SpecHash string `json:"spec_hash"`
	// Unit is the producing unit's key.
	Unit string `json:"unit"`
	// Kind is KindTask or KindExperiment.
	Kind string `json:"kind"`
	// Seed is the unit seed; identical specs reproduce identical seeds.
	Seed int64 `json:"seed"`
	// Trial is the unit's trial index.
	Trial int `json:"trial"`

	// Task-unit fields: the grid point and its measurements.
	Task        string `json:"task,omitempty"`
	Scheme      string `json:"scheme,omitempty"`
	Family      string `json:"family,omitempty"`
	N           int    `json:"n,omitempty"`     // requested size
	Nodes       int    `json:"nodes,omitempty"` // generated size
	Edges       int    `json:"edges,omitempty"`
	AdviceBits  int    `json:"advice_bits,omitempty"`
	Messages    int    `json:"messages,omitempty"`
	MessageBits int    `json:"message_bits,omitempty"`
	Rounds      int    `json:"rounds,omitempty"`

	// Experiment-unit fields: one replayed table row.
	Experiment string             `json:"experiment,omitempty"`
	Row        int                `json:"row,omitempty"`
	Columns    []string           `json:"columns,omitempty"`
	Cells      []string           `json:"cells,omitempty"`
	Labels     map[string]string  `json:"labels,omitempty"`
	Values     map[string]float64 `json:"values,omitempty"`

	// Complete reports task success (all nodes informed) or, for
	// experiment rows, that the table regenerated without error.
	Complete bool `json:"complete"`
	// WallNS is the unit's wall-clock time in nanoseconds — the only field
	// excluded from determinism comparisons.
	WallNS int64 `json:"wall_ns"`
}

// Validate checks the record against the schema for its kind.
func (r Record) Validate() error {
	if r.SpecHash == "" {
		return fmt.Errorf("campaign: record missing spec_hash")
	}
	if r.Unit == "" {
		return fmt.Errorf("campaign: record missing unit key")
	}
	if r.Trial < 0 {
		return fmt.Errorf("campaign: record %s: negative trial %d", r.Unit, r.Trial)
	}
	if r.WallNS < 0 {
		return fmt.Errorf("campaign: record %s: negative wall_ns %d", r.Unit, r.WallNS)
	}
	switch r.Kind {
	case KindTask:
		if r.Task == "" || r.Scheme == "" || r.Family == "" {
			return fmt.Errorf("campaign: task record %s missing task/scheme/family", r.Unit)
		}
		if r.N < 2 || r.Nodes < 2 {
			return fmt.Errorf("campaign: task record %s: n=%d nodes=%d, want >= 2", r.Unit, r.N, r.Nodes)
		}
		if r.Edges < r.Nodes-1 {
			return fmt.Errorf("campaign: task record %s: %d edges cannot connect %d nodes", r.Unit, r.Edges, r.Nodes)
		}
		if r.Messages < 0 || r.MessageBits < 0 || r.AdviceBits < 0 || r.Rounds < 0 {
			return fmt.Errorf("campaign: task record %s: negative measurement", r.Unit)
		}
	case KindExperiment:
		if r.Experiment == "" {
			return fmt.Errorf("campaign: experiment record %s missing experiment ID", r.Unit)
		}
		if len(r.Columns) == 0 {
			return fmt.Errorf("campaign: experiment record %s has no columns", r.Unit)
		}
		if len(r.Cells) != len(r.Columns) && len(r.Cells) == 0 {
			return fmt.Errorf("campaign: experiment record %s has no cells", r.Unit)
		}
		if r.Row < 0 {
			return fmt.Errorf("campaign: experiment record %s: negative row %d", r.Unit, r.Row)
		}
	default:
		return fmt.Errorf("campaign: record %s: unknown kind %q", r.Unit, r.Kind)
	}
	return nil
}

// StripTiming zeroes the wall-time field for determinism comparisons.
func (r Record) StripTiming() Record {
	r.WallNS = 0
	return r
}

// encode appends the record's JSONL line to buf.
func (r Record) encode(buf []byte) ([]byte, error) {
	line, err := json.Marshal(r)
	if err != nil {
		return buf, fmt.Errorf("campaign: encoding record %s: %w", r.Unit, err)
	}
	buf = append(buf, line...)
	return append(buf, '\n'), nil
}

// Canonicalize returns a copy of the records in canonical order — sorted
// by unit key, then row — with timing stripped. Two result files produced
// from the same spec and seed canonicalize to identical bytes regardless
// of which machine (or fleet) ran which unit, which is the determinism
// contract distributed runs are checked against.
func Canonicalize(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = r.StripTiming()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Row < out[j].Row
	})
	return out
}

// EncodeRecords writes records as JSONL, one line per record.
func EncodeRecords(w io.Writer, recs []Record) error {
	var buf []byte
	for _, r := range recs {
		var err error
		if buf, err = r.encode(buf[:0]); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("campaign: writing record %s: %w", r.Unit, err)
		}
	}
	return nil
}

// DecodeRecords parses a JSONL stream. It stops at the first malformed
// line (a torn final line from a killed run counts as malformed) and
// returns the records decoded so far together with the error.
func DecodeRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return recs, fmt.Errorf("campaign: line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("campaign: reading records: %w", err)
	}
	return recs, nil
}
