// Package campaign orchestrates large experiment sweeps. A declarative
// Spec — graph families × size grid × tasks × oracle schemes × trials,
// plus optional whole-experiment replays from the internal/experiments
// registry — compiles into a deterministic unit-of-work list (see
// Spec.Units). A bounded worker Pool executes the units and streams one
// self-describing JSONL Record per completed unit (per table row for
// experiment units) to an order-preserving Sink, so two runs with the same
// spec and seed are byte-identical apart from wall-time fields. Runs are
// resumable: diffing a partial sink against the unit list (see LoadDone)
// yields exactly the missing units. The aggregator folds JSONL back into
// experiments.Table renderers and diffs a run against a baseline file.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"

	"oraclesize/internal/experiments"
	"oraclesize/internal/graphgen"
)

// TaskSpec selects one task and the oracle schemes to sweep it under.
type TaskSpec struct {
	// Task names a registered task ("wakeup", "broadcast").
	Task string `json:"task"`
	// Schemes lists oracle/algorithm pairings for the task; empty selects
	// every registered scheme.
	Schemes []string `json:"schemes,omitempty"`
}

// Spec is a declarative campaign: the full cross product of families,
// sizes, task/scheme pairs and trials, each trial with its own
// deterministic seed derived from Seed and the unit key.
type Spec struct {
	// Name labels the campaign in summaries.
	Name string `json:"name"`
	// Seed drives every per-unit seed; equal specs with equal seeds
	// reproduce identical records.
	Seed int64 `json:"seed"`
	// Trials is the number of independent trials per grid point.
	Trials int `json:"trials"`
	// Families lists graphgen family names to sweep.
	Families []string `json:"families,omitempty"`
	// Sizes is the requested-n grid.
	Sizes []int `json:"sizes,omitempty"`
	// Tasks lists the task/scheme pairings to run over the grid.
	Tasks []TaskSpec `json:"tasks,omitempty"`
	// Experiments optionally replays whole experiment tables (by registry
	// ID, e.g. "E5") as campaign units.
	Experiments []string `json:"experiments,omitempty"`
	// Quick selects reduced sweeps for replayed experiments.
	Quick bool `json:"quick,omitempty"`
	// MaxMessages caps per-run sends; 0 selects the simulator default.
	MaxMessages int `json:"max_messages,omitempty"`
}

// Validate checks that every referenced family, task, scheme and
// experiment exists and that the grid is non-degenerate.
func (s *Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("campaign: trials must be >= 1, got %d", s.Trials)
	}
	if len(s.Tasks) == 0 && len(s.Experiments) == 0 {
		return fmt.Errorf("campaign: spec selects no tasks and no experiments")
	}
	if len(s.Tasks) > 0 {
		if len(s.Families) == 0 {
			return fmt.Errorf("campaign: tasks need at least one family")
		}
		if len(s.Sizes) == 0 {
			return fmt.Errorf("campaign: tasks need at least one size")
		}
	}
	for _, fname := range s.Families {
		if _, err := graphgen.FamilyByName(fname); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("campaign: sizes must be >= 2, got %d", n)
		}
	}
	for _, ts := range s.Tasks {
		td, err := taskByName(ts.Task)
		if err != nil {
			return err
		}
		for _, sc := range ts.Schemes {
			if _, err := td.SchemeByName(sc); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	for _, id := range s.Experiments {
		if _, err := experiments.ByID(id); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	return nil
}

// Hash fingerprints the spec: records carry it so a results file can be
// checked against the spec that resumes or summarizes it. The hash covers
// every field (canonical JSON), so any grid change invalidates old sinks.
func (s *Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: hashing spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads a spec file written by WriteSpec or by hand.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: reading spec: %w", err)
	}
	return ParseSpec(data)
}

// QuickSpec is the built-in smoke campaign: {wakeup, broadcast} × two
// families × two sizes × both schemes × two trials — small enough for CI,
// broad enough to exercise every moving part.
func QuickSpec() *Spec {
	return &Spec{
		Name:     "quick",
		Seed:     1,
		Trials:   2,
		Families: []string{"path", "random-sparse"},
		Sizes:    []int{16, 32},
		Tasks: []TaskSpec{
			{Task: "wakeup", Schemes: []string{"tree", "flooding"}},
			{Task: "broadcast", Schemes: []string{"light-tree", "flooding"}},
		},
		Quick: true,
	}
}
