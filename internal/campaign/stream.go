package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// lineScanner iterates the lines of a JSONL stream while tracking the
// byte offset just past the last complete (newline-terminated) line. It
// tolerates lines of any length — the scratch buffer grows as needed and
// is reused across lines, so scanning allocates O(longest line), not
// O(file).
type lineScanner struct {
	r      *bufio.Reader
	buf    []byte
	offset int64 // bytes consumed through the end of the last terminated line
}

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// next returns the following line without its newline. terminated is
// false for a torn final line with no trailing newline (the offset does
// not advance past it). A nil line with a nil error is clean EOF.
func (ls *lineScanner) next() (line []byte, terminated bool, err error) {
	ls.buf = ls.buf[:0]
	for {
		chunk, err := ls.r.ReadSlice('\n')
		ls.buf = append(ls.buf, chunk...)
		switch err {
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(ls.buf) == 0 {
				return nil, false, nil
			}
			return ls.buf, false, nil
		case nil:
			ls.offset += int64(len(ls.buf))
			return ls.buf[:len(ls.buf)-1], true, nil
		default:
			return nil, false, fmt.Errorf("campaign: reading records: %w", err)
		}
	}
}

// StreamRecords decodes a JSONL stream one record at a time, calling fn
// for each, without retaining previous records — the memory profile is
// O(longest line) plus whatever fn keeps, where DecodeRecords holds the
// whole artifact. Empty lines are skipped; a malformed line (including a
// torn final line that is not valid JSON) stops the stream with an error,
// as does the first error fn returns.
func StreamRecords(r io.Reader, fn func(Record) error) error {
	ls := newLineScanner(r)
	lineNo := 0
	for {
		line, _, err := ls.next()
		if err != nil {
			return err
		}
		if line == nil {
			return nil
		}
		lineNo++
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("campaign: line %d: %w", lineNo, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// seenRecord is the slice of a Record the resume fast path needs; parsing
// into it skips the measurement fields, maps and slices a full decode
// would allocate.
type seenRecord struct {
	SpecHash string `json:"spec_hash"`
	Unit     string `json:"unit"`
}

// ScanDone is the streaming fast path behind resume: one pass over a
// JSONL results stream collecting only the seen unit-key set and the
// first record's spec hash, without decoding measurement fields or
// retaining records. It returns the byte length of the valid JSONL
// prefix; a torn or malformed tail (from a killed run) is tolerated and
// simply ends the scan, exactly like LoadDone treats it.
func ScanDone(r io.Reader) (done map[string]bool, specHash string, validLen int64, err error) {
	done = map[string]bool{}
	ls := newLineScanner(r)
	for {
		line, terminated, err := ls.next()
		if err != nil {
			return done, specHash, validLen, err
		}
		if line == nil || !terminated {
			return done, specHash, validLen, nil
		}
		if len(line) > 0 {
			var rec seenRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return done, specHash, validLen, nil
			}
			if specHash == "" {
				specHash = rec.SpecHash
			}
			done[rec.Unit] = true
		}
		validLen = ls.offset
	}
}

// ScanDoneFile is ScanDone over a file; a missing file reads as empty.
// It is the index-shaped replacement for LoadDoneFile on the resume
// path: same done set and valid prefix length, no record slice.
func ScanDoneFile(path string) (done map[string]bool, specHash string, validLen int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, "", 0, nil
	}
	if err != nil {
		return nil, "", 0, fmt.Errorf("campaign: reading results: %w", err)
	}
	defer f.Close()
	return ScanDone(f)
}
