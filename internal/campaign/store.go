package campaign

// Store is the deposit-side contract a campaign execution writes through:
// the ordered JSONL Sink implements it, and so does the embedded
// warehouse (internal/warehouse). Deposits arrive concurrently and out of
// unit order from pool workers or shard merges; implementations must be
// safe for concurrent use and idempotent — a duplicate deposit for a unit
// already held (hedge losers, reassigned leases, resume replays) is
// dropped and counted, never written twice.
type Store interface {
	// Deposit hands the store the records of one unit. nil records mark a
	// unit satisfied by a resume: the store acknowledges it without
	// writing anything.
	Deposit(index int, recs []Record) error
	// Flushed reports how many units have been deposited (or acknowledged
	// as resumed) so far.
	Flushed() int
	// Written reports how many records have been written so far.
	Written() int
	// Deduped reports how many duplicate deposits have been dropped.
	Deduped() int
}

var _ Store = (*Sink)(nil)
