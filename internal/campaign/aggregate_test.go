package campaign

import (
	"strings"
	"testing"
)

func taskRec(family string, n, trial, messages, advice int) Record {
	return Record{
		SpecHash: "h", Unit: "task/u", Kind: KindTask, Trial: trial,
		Task: "wakeup", Scheme: "tree", Family: family,
		N: n, Nodes: n, Edges: n - 1,
		Messages: messages, AdviceBits: advice, Rounds: n - 1,
		MessageBits: 4 * messages, Complete: true,
	}
}

func TestAggregateMeansOverTrials(t *testing.T) {
	recs := []Record{
		taskRec("path", 16, 0, 15, 180),
		taskRec("path", 16, 1, 17, 180),
	}
	tables := Aggregate(recs)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	out := tables[0].Render()
	// mean(15,17) = 16; trials column = 2
	if !strings.Contains(out, "16.000") {
		t.Errorf("mean messages missing:\n%s", out)
	}
	rows := tables[0].RowRecords()
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if got := rows[0].Values["messages"]; got != 16 {
		t.Errorf("mean messages = %v, want 16", got)
	}
	if got := rows[0].Values["trials"]; got != 2 {
		t.Errorf("trials = %v, want 2", got)
	}
}

func TestAggregateReplaysExperimentTables(t *testing.T) {
	recs := []Record{
		{
			SpecHash: "h", Unit: "experiment/E5/t0", Kind: KindExperiment,
			Experiment: "E5", Row: 1, Columns: []string{"n", "ratio"},
			Cells: []string{"64", "1.5"}, Complete: true,
		},
		{
			SpecHash: "h", Unit: "experiment/E5/t0", Kind: KindExperiment,
			Experiment: "E5", Row: 0, Columns: []string{"n", "ratio"},
			Cells: []string{"16", "2.8"}, Complete: true,
		},
	}
	tables := Aggregate(recs)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	out := tables[0].Render()
	// Rows come back in recorded row order regardless of arrival order.
	if !strings.Contains(out, "E5") || strings.Index(out, "2.8") > strings.Index(out, "1.5") {
		t.Errorf("replay wrong:\n%s", out)
	}
}

func TestSummaryDeltas(t *testing.T) {
	base := []Record{taskRec("path", 16, 0, 15, 180)}
	cur := []Record{
		taskRec("path", 16, 0, 18, 170),
		taskRec("grid", 16, 0, 20, 200),
	}
	tables := Summary(cur, base)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	out := tables[0].Render()
	for _, want := range []string{"+3", "-10", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryFlagsDroppedPoints(t *testing.T) {
	base := []Record{
		taskRec("path", 16, 0, 15, 180),
		taskRec("grid", 16, 0, 22, 300),
	}
	cur := []Record{taskRec("path", 16, 0, 15, 180)}
	out := Summary(cur, base)[0].Render()
	if !strings.Contains(out, "dropped") {
		t.Errorf("dropped baseline point not flagged:\n%s", out)
	}
	if !strings.Contains(out, "0") { // unchanged point shows zero delta
		t.Errorf("zero delta missing:\n%s", out)
	}
}

func TestSummaryWithoutBaselineEqualsAggregateShape(t *testing.T) {
	cur := []Record{taskRec("path", 16, 0, 15, 180)}
	tables := Summary(cur, nil)
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	if !strings.Contains(tables[0].Render(), "new") {
		t.Error("points with no baseline should read as new")
	}
}
