package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink serializes records as JSONL in unit-index order. Units complete out
// of order under the worker pool, so out-of-order batches are buffered and
// flushed as soon as every lower-indexed unit has been deposited. This
// makes the byte stream deterministic for a given spec and seed (apart
// from wall-time fields) and means an interrupted sink always holds an
// index-prefix of the unit list plus nothing torn mid-unit: each unit's
// records are written with a single Write call.
type Sink struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	pending map[int][]Record
	flushed int
	written int
	deduped int
}

// NewSink wraps w; the caller owns closing any underlying file.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: w, pending: make(map[int][]Record)}
}

// Deposit hands the sink the records of unit index (nil for a unit skipped
// on resume) and flushes every consecutive ready unit. Safe for concurrent
// use by pool workers.
//
// Deposits are idempotent: a second deposit for an index already pending or
// already flushed — as produced by hedged shard dispatch, a reassigned
// lease whose original holder completed anyway, or a resumed run replaying
// a unit — is dropped and counted (see Deduped). The first deposit wins;
// units are deterministic in (spec, seed), so dropped duplicates carry the
// same payload apart from wall-time fields.
func (s *Sink) Deposit(index int, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pending[index]; dup || index < s.next {
		s.deduped++
		return nil
	}
	if recs == nil {
		recs = []Record{}
	}
	s.pending[index] = recs
	for {
		batch, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		delete(s.pending, s.next)
		if len(batch) > 0 {
			var buf []byte
			var err error
			for _, rec := range batch {
				if buf, err = rec.encode(buf); err != nil {
					return err
				}
			}
			if _, err := s.w.Write(buf); err != nil {
				return fmt.Errorf("campaign: sink: writing unit %d: %w", s.next, err)
			}
			s.written += len(batch)
		}
		s.next++
		s.flushed++
	}
}

// Flushed reports how many units have been written (or skipped) so far.
func (s *Sink) Flushed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushed
}

// Written reports how many records have been written so far.
func (s *Sink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Deduped reports how many duplicate deposits have been dropped so far.
func (s *Sink) Deduped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deduped
}

// LoadDone reads an existing results stream and returns the set of unit
// keys already present plus the decoded records. A torn final line (from a
// killed run) is tolerated: complete leading records are kept and the unit
// owning the torn line is treated as not done, so resume re-runs it.
func LoadDone(r io.Reader) (map[string]bool, []Record, error) {
	recs, err := DecodeRecords(r)
	if err != nil && len(recs) == 0 {
		return nil, nil, err
	}
	done := make(map[string]bool, len(recs))
	for _, rec := range recs {
		done[rec.Unit] = true
	}
	return done, recs, nil
}

// LoadDoneFile is LoadDone over a file, in one streaming pass that never
// holds the raw file bytes. It additionally returns the byte length of
// the valid JSONL prefix: a resume must truncate the file to that length
// before appending, or a torn final line from a killed run would
// concatenate with the first appended record. A missing file reads as
// empty. Callers that only need the done set should prefer ScanDoneFile,
// which skips decoding and retaining the records entirely.
func LoadDoneFile(path string) (map[string]bool, []Record, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("campaign: reading results: %w", err)
	}
	defer f.Close()
	done := map[string]bool{}
	var recs []Record
	var validLen int64
	ls := newLineScanner(f)
	for {
		line, terminated, err := ls.next()
		if err != nil {
			return nil, nil, 0, err
		}
		if line == nil || !terminated {
			return done, recs, validLen, nil
		}
		if len(line) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				// Torn or malformed tail: keep the valid prefix, the unit
				// owning this line re-runs on resume.
				return done, recs, validLen, nil
			}
			recs = append(recs, rec)
			done[rec.Unit] = true
		}
		validLen = ls.offset
	}
}
