package campaign

import "fmt"

// Shard is a contiguous range [Start, End) of a spec's compiled unit list.
// Shards are the unit of distribution: a coordinator leases whole shards to
// workers, and because shard boundaries are a pure function of (unit count,
// shard size), every party that agrees on the spec agrees on the shards.
type Shard struct {
	// Index is the shard's ordinal in the partition.
	Index int `json:"index"`
	// Start and End bound the unit-index range, half open.
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len is the number of units in the shard.
func (sh Shard) Len() int { return sh.End - sh.Start }

// String renders the shard for logs: "shard 3 [96,128)".
func (sh Shard) String() string {
	return fmt.Sprintf("shard %d [%d,%d)", sh.Index, sh.Start, sh.End)
}

// Shards partitions total units into consecutive shards of at most size
// units each (the final shard may be short). size < 1 selects one unit per
// shard; total <= 0 yields no shards.
func Shards(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	shards := make([]Shard, 0, (total+size-1)/size)
	for start := 0; start < total; start += size {
		end := start + size
		if end > total {
			end = total
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, End: end})
	}
	return shards
}

// ShardSeq partitions total units into consecutive shards whose sizes
// follow sizes in order — the shape a dynamic sizing controller produces,
// where every lease may be a different length. Entries < 1 read as 1; once
// sizes is exhausted the last entry repeats (an empty sizes reads as all
// ones). Like Shards, the result covers [0, total) exactly, each unit in
// exactly one shard, shards indexed in order.
func ShardSeq(total int, sizes []int) []Shard {
	if total <= 0 {
		return nil
	}
	var shards []Shard
	size := 1
	for start, i := 0, 0; start < total; i++ {
		if i < len(sizes) {
			size = sizes[i]
		}
		if size < 1 {
			size = 1
		}
		end := start + size
		if end > total {
			end = total
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, End: end})
		start = end
	}
	return shards
}

// RunShard executes the shard's units sequentially and returns one record
// batch per unit, in unit order. The caller supplies the compiled unit list
// (compile once, run many shards) and optionally a shared instance cache;
// a nil cache regenerates instances from their seeds, which changes speed
// but never record contents. The worker-pool layer above decides how many
// shards run at once — a shard itself stays single-threaded so a bounded
// queue slot costs exactly one core.
func RunShard(spec *Spec, units []Unit, sh Shard, cache *Cache) ([][]Record, error) {
	if sh.Start < 0 || sh.End > len(units) || sh.Start >= sh.End {
		return nil, fmt.Errorf("campaign: %v out of range for %d units", sh, len(units))
	}
	specHash := spec.Hash()
	var ic *instanceCache
	if cache != nil {
		ic = cache.c
	}
	out := make([][]Record, sh.Len())
	for i := sh.Start; i < sh.End; i++ {
		recs, err := runUnit(spec, specHash, units[i], ic)
		if err != nil {
			return nil, fmt.Errorf("campaign: unit %s: %w", units[i].Key(), err)
		}
		out[i-sh.Start] = recs
	}
	return out, nil
}
