package campaign

import (
	"fmt"
	"sort"

	"oraclesize/internal/experiments"
)

// aggKey locates one aggregated cell group: a grid point averaged over
// trials.
type aggKey struct {
	task   string
	family string
	n      int
	scheme string
}

// aggCell accumulates one grid point's trials.
type aggCell struct {
	trials      int
	nodes       float64
	edges       float64
	adviceBits  float64
	messages    float64
	messageBits float64
	rounds      float64
	complete    bool
}

func (c *aggCell) add(r Record) {
	c.trials++
	c.nodes += float64(r.Nodes)
	c.edges += float64(r.Edges)
	c.adviceBits += float64(r.AdviceBits)
	c.messages += float64(r.Messages)
	c.messageBits += float64(r.MessageBits)
	c.rounds += float64(r.Rounds)
	if c.trials == 1 {
		c.complete = r.Complete
	} else {
		c.complete = c.complete && r.Complete
	}
}

func (c *aggCell) mean(sum float64) float64 { return sum / float64(c.trials) }

// Aggregator folds records into summary tables one record at a time, so
// callers can stream an artifact (StreamRecords, a warehouse Scan)
// through it without ever holding the record list. Task records reduce
// to O(grid) running cells; experiment replays are the one part that
// must be retained, because their table cells are reproduced verbatim.
type Aggregator struct {
	order    []aggKey
	cells    map[aggKey]*aggCell
	expOrder []string
	expRows  map[string][]Record
}

// NewAggregator returns an empty aggregator ready for Add.
func NewAggregator() *Aggregator {
	return &Aggregator{
		cells:   make(map[aggKey]*aggCell),
		expRows: make(map[string][]Record),
	}
}

// Add folds one record into the running aggregate.
func (a *Aggregator) Add(r Record) {
	switch r.Kind {
	case KindTask:
		k := aggKey{task: r.Task, family: r.Family, n: r.N, scheme: r.Scheme}
		c, ok := a.cells[k]
		if !ok {
			c = &aggCell{}
			a.cells[k] = c
			a.order = append(a.order, k)
		}
		c.add(r)
	case KindExperiment:
		if _, ok := a.expRows[r.Experiment]; !ok {
			a.expOrder = append(a.expOrder, r.Experiment)
		}
		a.expRows[r.Experiment] = append(a.expRows[r.Experiment], r)
	}
}

// fold groups task records by grid point in first-appearance order.
func fold(records []Record) *Aggregator {
	a := NewAggregator()
	for _, r := range records {
		a.Add(r)
	}
	return a
}

// Tables renders the aggregate in experiments.Table form: one table per
// task (trial means per grid point) followed by one table per replayed
// experiment, reconstructed cell-for-cell.
func (a *Aggregator) Tables() []*experiments.Table {
	var tables []*experiments.Table
	byTask := make(map[string]*experiments.Table)
	for _, k := range a.order {
		t, ok := byTask[k.task]
		if !ok {
			t = &experiments.Table{
				ID:    "campaign-" + k.task,
				Title: fmt.Sprintf("campaign aggregate: %s (means over trials)", k.task),
				Columns: []string{
					"family", "n", "scheme", "trials", "nodes", "edges",
					"advice-bits", "messages", "message-bits", "rounds", "complete",
				},
			}
			byTask[k.task] = t
			tables = append(tables, t)
		}
		c := a.cells[k]
		t.AddRow(
			k.family, k.n, k.scheme, c.trials,
			c.mean(c.nodes), c.mean(c.edges), c.mean(c.adviceBits),
			c.mean(c.messages), c.mean(c.messageBits), c.mean(c.rounds),
			completeMark(c.complete),
		)
	}
	tables = append(tables, a.replayTables()...)
	return tables
}

// Aggregate folds a record list and renders it; streaming callers should
// feed an Aggregator directly instead of materializing the slice.
func Aggregate(records []Record) []*experiments.Table {
	return fold(records).Tables()
}

// replayTables rebuilds experiment tables from experiment-kind records.
func (a *Aggregator) replayTables() []*experiments.Table {
	var tables []*experiments.Table
	for _, id := range a.expOrder {
		recs := append([]Record(nil), a.expRows[id]...)
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].Trial != recs[j].Trial {
				return recs[i].Trial < recs[j].Trial
			}
			return recs[i].Row < recs[j].Row
		})
		t := &experiments.Table{
			ID:      id,
			Title:   "replayed from campaign JSONL",
			Columns: recs[0].Columns,
		}
		for _, r := range recs {
			vals := make([]interface{}, len(r.Cells))
			for i, cell := range r.Cells {
				vals[i] = cell
			}
			t.AddRow(vals...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Summary compares a run against a baseline; streaming callers should
// fold both sides into Aggregators and call SummaryOf.
func Summary(current, baseline []Record) []*experiments.Table {
	return SummaryOf(fold(current), fold(baseline))
}

// SummaryOf compares two aggregates, grid point by grid point: each
// metric cell shows the current mean plus its delta to the baseline
// mean. Grid points absent from the baseline are flagged "new"; baseline
// points absent from the run are appended as "dropped".
func SummaryOf(current, baseline *Aggregator) []*experiments.Table {
	curOrder, curCells := current.order, current.cells
	baseOrder, baseCells := baseline.order, baseline.cells
	var tables []*experiments.Table
	byTask := make(map[string]*experiments.Table)
	tableFor := func(task string) *experiments.Table {
		t, ok := byTask[task]
		if !ok {
			t = &experiments.Table{
				ID:    "campaign-summary-" + task,
				Title: fmt.Sprintf("campaign summary: %s (current vs baseline)", task),
				Columns: []string{
					"family", "n", "scheme", "trials", "status",
					"advice-bits", "Δadvice", "messages", "Δmessages",
					"message-bits", "Δmsg-bits", "rounds", "Δrounds", "complete",
				},
			}
			byTask[task] = t
			tables = append(tables, t)
		}
		return t
	}
	for _, k := range curOrder {
		c := curCells[k]
		b, inBase := baseCells[k]
		status := "="
		if !inBase {
			status = "new"
		}
		delta := func(cur, base func(*aggCell) float64) string {
			if !inBase {
				return "-"
			}
			return formatDelta(cur(c) - base(b))
		}
		advice := func(a *aggCell) float64 { return a.mean(a.adviceBits) }
		msgs := func(a *aggCell) float64 { return a.mean(a.messages) }
		bits := func(a *aggCell) float64 { return a.mean(a.messageBits) }
		rounds := func(a *aggCell) float64 { return a.mean(a.rounds) }
		tableFor(k.task).AddRow(
			k.family, k.n, k.scheme, c.trials, status,
			advice(c), delta(advice, advice),
			msgs(c), delta(msgs, msgs),
			bits(c), delta(bits, bits),
			rounds(c), delta(rounds, rounds),
			completeMark(c.complete),
		)
	}
	for _, k := range baseOrder {
		if _, inCur := curCells[k]; inCur {
			continue
		}
		b := baseCells[k]
		tableFor(k.task).AddRow(
			k.family, k.n, k.scheme, b.trials, "dropped",
			b.mean(b.adviceBits), "-", b.mean(b.messages), "-",
			b.mean(b.messageBits), "-", b.mean(b.rounds), "-",
			completeMark(b.complete),
		)
	}
	return tables
}

func formatDelta(d float64) string {
	switch {
	case d == 0:
		return "0"
	case d > 0:
		return "+" + trimFloat(d)
	default:
		return "-" + trimFloat(-d)
	}
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}

func completeMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
