package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"oraclesize/internal/broadcast"
	"oraclesize/internal/experiments"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/wakeup"
)

// pairing couples an oracle with the scheme that consumes its advice.
type pairing struct {
	oracle oracle.Oracle
	algo   scheme.Algorithm
}

// taskDef is one registered task: its legality constraint plus the valid
// oracle/scheme pairings.
type taskDef struct {
	name          string
	enforceWakeup bool
	schemes       map[string]pairing
	schemeOrder   []string
}

func taskDefs() []taskDef {
	return []taskDef{
		{
			name:          "wakeup",
			enforceWakeup: true,
			schemes: map[string]pairing{
				"tree":     {oracle: wakeup.Oracle{}, algo: wakeup.Algorithm{}},
				"flooding": {oracle: oracle.Empty{}, algo: wakeup.Flooding{}},
			},
			schemeOrder: []string{"tree", "flooding"},
		},
		{
			name: "broadcast",
			schemes: map[string]pairing{
				"light-tree": {oracle: broadcast.Oracle{}, algo: broadcast.Algorithm{}},
				"flooding":   {oracle: oracle.Empty{}, algo: broadcast.Flooding{}},
			},
			schemeOrder: []string{"light-tree", "flooding"},
		},
	}
}

func taskByName(name string) (taskDef, error) {
	for _, td := range taskDefs() {
		if td.name == name {
			return td, nil
		}
	}
	return taskDef{}, fmt.Errorf("campaign: unknown task %q", name)
}

// Tasks lists the registered task names.
func Tasks() []string {
	defs := taskDefs()
	names := make([]string, len(defs))
	for i, td := range defs {
		names[i] = td.name
	}
	return names
}

// Schemes lists the registered scheme names for a task.
func Schemes(task string) ([]string, error) {
	td, err := taskByName(task)
	if err != nil {
		return nil, err
	}
	return td.schemeOrder, nil
}

// runUnit executes one unit and returns its records (one for task units,
// one per table row for experiment units).
func runUnit(s *Spec, specHash string, u Unit, cache *instanceCache) ([]Record, error) {
	switch u.Kind {
	case KindTask:
		rec, err := runTaskUnit(s, specHash, u, cache)
		if err != nil {
			return nil, err
		}
		return []Record{rec}, nil
	case KindExperiment:
		return runExperimentUnit(s, specHash, u)
	default:
		return nil, fmt.Errorf("campaign: unknown unit kind %q", u.Kind)
	}
}

func runTaskUnit(s *Spec, specHash string, u Unit, cache *instanceCache) (Record, error) {
	td, err := taskByName(u.Task)
	if err != nil {
		return Record{}, err
	}
	p, ok := td.schemes[u.Scheme]
	if !ok {
		return Record{}, fmt.Errorf("campaign: task %q has no scheme %q", u.Task, u.Scheme)
	}
	fam, err := graphgen.FamilyByName(u.Family)
	if err != nil {
		return Record{}, err
	}
	var g *graph.Graph
	var advice sim.Advice
	if cache != nil {
		e, err := cache.instance(u, fam)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: generating %s n=%d: %w", u.Family, u.N, err)
		}
		g = e.g
		advice, err = e.advise(p.oracle, 0)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: advising %s/%s: %w", u.Task, u.Scheme, err)
		}
	} else {
		rng := rand.New(rand.NewSource(u.InstanceSeed))
		g, err = fam.Generate(u.N, rng)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: generating %s n=%d: %w", u.Family, u.N, err)
		}
		advice, err = p.oracle.Advise(g, 0)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: advising %s/%s: %w", u.Task, u.Scheme, err)
		}
	}
	start := time.Now()
	res, err := sim.Run(g, 0, p.algo, advice, sim.Options{
		EnforceWakeup: td.enforceWakeup,
		MaxMessages:   s.MaxMessages,
	})
	if err != nil {
		return Record{}, fmt.Errorf("campaign: running %s: %w", u.Key(), err)
	}
	return Record{
		SpecHash:    specHash,
		Unit:        u.Key(),
		Kind:        KindTask,
		Seed:        u.Seed,
		Trial:       u.Trial,
		Task:        u.Task,
		Scheme:      u.Scheme,
		Family:      u.Family,
		N:           u.N,
		Nodes:       g.N(),
		Edges:       g.M(),
		AdviceBits:  advice.SizeBits(),
		Messages:    res.Messages,
		MessageBits: res.MessageBits,
		Rounds:      res.Rounds,
		Complete:    res.AllInformed,
		WallNS:      time.Since(start).Nanoseconds(),
	}, nil
}

func runExperimentUnit(s *Spec, specHash string, u Unit) ([]Record, error) {
	r, err := experiments.ByID(u.Experiment)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tb, err := r.Run(experiments.Config{Seed: u.Seed, Quick: s.Quick})
	if err != nil {
		return nil, fmt.Errorf("campaign: experiment %s: %w", u.Experiment, err)
	}
	wall := time.Since(start).Nanoseconds()
	rows := tb.RowRecords()
	recs := make([]Record, len(rows))
	for i, rr := range rows {
		recs[i] = Record{
			SpecHash:   specHash,
			Unit:       u.Key(),
			Kind:       KindExperiment,
			Seed:       u.Seed,
			Trial:      u.Trial,
			Experiment: u.Experiment,
			Row:        i,
			Columns:    tb.Columns,
			Cells:      cellTexts(tb.Records[i]),
			Labels:     rr.Labels,
			Values:     rr.Values,
			Complete:   true,
			WallNS:     wall, // whole-table wall time, repeated on each row
		}
	}
	return recs, nil
}

func cellTexts(cells []experiments.Cell) []string {
	texts := make([]string, len(cells))
	for i, c := range cells {
		texts[i] = c.Text
	}
	return texts
}
