package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"oraclesize/internal/catalog"
	"oraclesize/internal/experiments"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

// taskByName resolves a task through the shared catalog registry, the same
// source of truth oraclesim and oracled use.
func taskByName(name string) (catalog.Task, error) {
	td, err := catalog.TaskByName(name)
	if err != nil {
		return catalog.Task{}, fmt.Errorf("campaign: %w", err)
	}
	return td, nil
}

// Tasks lists the registered task names.
func Tasks() []string { return catalog.TaskNames() }

// Schemes lists the registered canonical scheme names for a task.
func Schemes(task string) ([]string, error) {
	td, err := taskByName(task)
	if err != nil {
		return nil, err
	}
	return td.SchemeNames(), nil
}

// runUnit executes one unit and returns its records (one for task units,
// one per table row for experiment units).
func runUnit(s *Spec, specHash string, u Unit, cache *instanceCache) ([]Record, error) {
	switch u.Kind {
	case KindTask:
		rec, err := runTaskUnit(s, specHash, u, cache)
		if err != nil {
			return nil, err
		}
		return []Record{rec}, nil
	case KindExperiment:
		return runExperimentUnit(s, specHash, u)
	default:
		return nil, fmt.Errorf("campaign: unknown unit kind %q", u.Kind)
	}
}

func runTaskUnit(s *Spec, specHash string, u Unit, cache *instanceCache) (Record, error) {
	td, err := taskByName(u.Task)
	if err != nil {
		return Record{}, err
	}
	sc, err := td.SchemeByName(u.Scheme)
	if err != nil {
		return Record{}, fmt.Errorf("campaign: %w", err)
	}
	orc := sc.NewOracle(0)
	fam, err := graphgen.FamilyByName(u.Family)
	if err != nil {
		return Record{}, err
	}
	var g *graph.Graph
	var advice sim.Advice
	if cache != nil {
		e, err := cache.instance(u, fam)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: generating %s n=%d: %w", u.Family, u.N, err)
		}
		g = e.g
		advice, err = e.advise(orc, 0)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: advising %s/%s: %w", u.Task, u.Scheme, err)
		}
	} else {
		rng := rand.New(rand.NewSource(u.InstanceSeed))
		g, err = fam.Generate(u.N, rng)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: generating %s n=%d: %w", u.Family, u.N, err)
		}
		advice, err = orc.Advise(g, 0)
		if err != nil {
			return Record{}, fmt.Errorf("campaign: advising %s/%s: %w", u.Task, u.Scheme, err)
		}
	}
	maxMessages := s.MaxMessages
	if maxMessages == 0 {
		// The simulator's default is linear in m+n; superlinear-but-correct
		// schemes (election by flooding) need the catalog's generous cap.
		maxMessages = catalog.MessageBudget(g)
	}
	start := time.Now()
	res, err := sim.Run(g, 0, sc.Algo, advice, sim.Options{
		EnforceWakeup: td.EnforceWakeup,
		RetainNodes:   td.NeedsNodes,
		MaxMessages:   maxMessages,
	})
	if err != nil {
		return Record{}, fmt.Errorf("campaign: running %s: %w", u.Key(), err)
	}
	return Record{
		SpecHash:    specHash,
		Unit:        u.Key(),
		Kind:        KindTask,
		Seed:        u.Seed,
		Trial:       u.Trial,
		Task:        u.Task,
		Scheme:      u.Scheme,
		Family:      u.Family,
		N:           u.N,
		Nodes:       g.N(),
		Edges:       g.M(),
		AdviceBits:  advice.SizeBits(),
		Messages:    res.Messages,
		MessageBits: res.MessageBits,
		Rounds:      res.Rounds,
		Complete:    td.Check(res) == nil,
		WallNS:      time.Since(start).Nanoseconds(),
	}, nil
}

func runExperimentUnit(s *Spec, specHash string, u Unit) ([]Record, error) {
	r, err := experiments.ByID(u.Experiment)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tb, err := r.Run(experiments.Config{Seed: u.Seed, Quick: s.Quick})
	if err != nil {
		return nil, fmt.Errorf("campaign: experiment %s: %w", u.Experiment, err)
	}
	wall := time.Since(start).Nanoseconds()
	rows := tb.RowRecords()
	recs := make([]Record, len(rows))
	for i, rr := range rows {
		recs[i] = Record{
			SpecHash:   specHash,
			Unit:       u.Key(),
			Kind:       KindExperiment,
			Seed:       u.Seed,
			Trial:      u.Trial,
			Experiment: u.Experiment,
			Row:        i,
			Columns:    tb.Columns,
			Cells:      cellTexts(tb.Records[i]),
			Labels:     rr.Labels,
			Values:     rr.Values,
			Complete:   true,
			WallNS:     wall, // whole-table wall time, repeated on each row
		}
	}
	return recs, nil
}

func cellTexts(cells []experiments.Cell) []string {
	texts := make([]string, len(cells))
	for i, c := range cells {
		texts[i] = c.Text
	}
	return texts
}
