package campaign

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	var hits [n]atomic.Int32
	err := Pool{Workers: 8}.Run(n, func(i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestPoolZeroAndNegativeCounts(t *testing.T) {
	ran := false
	if err := (Pool{}).Run(0, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n=0: err=%v ran=%v", err, ran)
	}
	if err := (Pool{}).Run(-3, func(int) error { ran = true; return nil }); err != nil || ran {
		t.Errorf("n=-3: err=%v ran=%v", err, ran)
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	var count atomic.Int32
	if err := (Pool{Workers: 0}).Run(17, func(int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 17 {
		t.Errorf("ran %d of 17", count.Load())
	}
}

func TestPoolReturnsSmallestIndexError(t *testing.T) {
	boom3 := errors.New("boom 3")
	err := Pool{Workers: 4}.Run(100, func(i int) error {
		switch i {
		case 3:
			return boom3
		case 40, 90:
			return errors.New("late failure")
		}
		return nil
	})
	if !errors.Is(err, boom3) {
		t.Errorf("got %v, want the index-3 error", err)
	}
}

func TestPoolStopsSchedulingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := Pool{Workers: 1}.Run(1000, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "stop here") {
		t.Fatalf("err = %v", err)
	}
	// Single worker: exactly indices 0..5 run.
	if got := ran.Load(); got != 6 {
		t.Errorf("ran %d calls after failure at 5, want 6", got)
	}
}
