package campaign

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Unit kinds.
const (
	KindTask       = "task"       // one simulated trial of task×scheme×family×n
	KindExperiment = "experiment" // one whole experiments.Runner table
)

// Unit is one schedulable unit of work. Units are identified by Key, which
// is stable across runs of the same spec: resume diffs sink keys against
// the compiled unit list.
type Unit struct {
	// Index is the unit's position in the compiled list; the sink emits
	// records in Index order regardless of completion order.
	Index int
	// Kind is KindTask or KindExperiment.
	Kind string
	// Task, Scheme, Family, N and Trial locate a task unit in the grid.
	Task   string
	Scheme string
	Family string
	N      int
	Trial  int
	// Experiment is the registry ID for experiment units.
	Experiment string
	// Seed is the unit's private seed, derived from the spec seed and Key.
	Seed int64
	// InstanceSeed seeds the graph instance for task units. It is derived
	// from the spec seed and InstanceKey — NOT from Key — so every unit
	// that agrees on (family, n, trial) draws the same graph and competing
	// schemes are measured on identical inputs.
	InstanceSeed int64
}

// Key returns the unit's stable identity within its spec.
func (u Unit) Key() string {
	if u.Kind == KindExperiment {
		return fmt.Sprintf("experiment/%s/t%d", u.Experiment, u.Trial)
	}
	return fmt.Sprintf("task/%s/%s/%s/n%d/t%d", u.Task, u.Scheme, u.Family, u.N, u.Trial)
}

// InstanceKey identifies the graph instance a task unit runs on within its
// spec. Units of different tasks and schemes share instances; trials
// differ. It seeds InstanceSeed; the instance cache keys by that seed, so
// equal keys from different specs never alias a cached graph.
func (u Unit) InstanceKey() string {
	return fmt.Sprintf("instance/%s/n%d/t%d", u.Family, u.N, u.Trial)
}

// unitSeed mixes the spec seed with the unit key so every unit draws from
// an independent, reproducible stream.
func unitSeed(specSeed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	const golden = uint64(0x9E3779B97F4A7C15)
	return int64(h.Sum64() ^ uint64(specSeed)*golden)
}

// satMul and satAdd saturate at math.MaxInt64 so UnitCount cannot overflow
// on adversarial specs (e.g. trials near 2^53 from a JSON body).
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// UnitCount returns len(s.Units()) without materializing the list, so
// callers can enforce a unit cap before compiling a spec whose cross
// product is enormous — a tiny JSON body can request billions of units.
// The count saturates at math.MaxInt64. Callers must Validate the spec
// first (negative trials would make the count meaningless).
func (s *Spec) UnitCount() int64 {
	var total int64
	for _, ts := range s.Tasks {
		schemes := int64(len(ts.Schemes))
		if schemes == 0 {
			td, err := taskByName(ts.Task)
			if err != nil {
				continue // Validate rejects this spec; keep the count consistent with Units
			}
			schemes = int64(len(td.SchemeNames()))
		}
		grid := satMul(satMul(int64(len(s.Families)), int64(len(s.Sizes))),
			satMul(schemes, int64(s.Trials)))
		total = satAdd(total, grid)
	}
	return satAdd(total, int64(len(s.Experiments)))
}

// Units compiles the spec into its deterministic unit list: tasks in spec
// order, then families, sizes, schemes and trials; experiment replays
// follow the grid. Callers must Validate the spec first.
func (s *Spec) Units() []Unit {
	var units []Unit
	add := func(u Unit) {
		u.Index = len(units)
		u.Seed = unitSeed(s.Seed, u.Key())
		if u.Kind == KindTask {
			u.InstanceSeed = unitSeed(s.Seed, u.InstanceKey())
		}
		units = append(units, u)
	}
	for _, ts := range s.Tasks {
		schemes := ts.Schemes
		if len(schemes) == 0 {
			td, err := taskByName(ts.Task)
			if err != nil {
				continue // Validate rejects this spec; keep Units total
			}
			schemes = td.SchemeNames()
		}
		for _, fname := range s.Families {
			for _, n := range s.Sizes {
				for _, sc := range schemes {
					for trial := 0; trial < s.Trials; trial++ {
						add(Unit{
							Kind:   KindTask,
							Task:   ts.Task,
							Scheme: sc,
							Family: fname,
							N:      n,
							Trial:  trial,
						})
					}
				}
			}
		}
	}
	for _, id := range s.Experiments {
		add(Unit{Kind: KindExperiment, Experiment: id})
	}
	return units
}
