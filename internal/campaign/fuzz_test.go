package campaign

import (
	"testing"
)

// maxFuzzUnits bounds fuzzed unit counts so a single input cannot
// allocate an absurd partition.
const maxFuzzUnits = 1 << 16

// checkPartition asserts the partition invariant every sharding scheme
// must uphold: shards cover [0, total) exactly — every unit in exactly one
// shard — in order, with contiguous indexes and nothing empty.
func checkPartition(t *testing.T, total int, shards []Shard) {
	t.Helper()
	if total <= 0 {
		if len(shards) != 0 {
			t.Fatalf("%d shards for %d units, want none", len(shards), total)
		}
		return
	}
	next := 0
	for i, sh := range shards {
		if sh.Index != i {
			t.Fatalf("shard %d has index %d", i, sh.Index)
		}
		if sh.Start != next {
			t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", i, sh.Start, next)
		}
		if sh.Len() < 1 {
			t.Fatalf("shard %d is empty: %v", i, sh)
		}
		if sh.End > total {
			t.Fatalf("shard %d ends at %d, past %d units", i, sh.End, total)
		}
		next = sh.End
	}
	if next != total {
		t.Fatalf("partition covers [0,%d), want [0,%d)", next, total)
	}
}

// FuzzShards fuzzes the fixed-size partition: arbitrary unit counts and
// shard sizes, including zero and negative values, must always yield a
// deterministic exact cover.
func FuzzShards(f *testing.F) {
	f.Add(10, 3)
	f.Add(0, 5)
	f.Add(7, 0)
	f.Add(1, 1)
	f.Add(1000, 1)
	f.Add(1, 1000)
	f.Add(-3, 4)
	f.Add(64, -1)
	f.Fuzz(func(t *testing.T, total, size int) {
		if total > maxFuzzUnits {
			total %= maxFuzzUnits
		}
		shards := Shards(total, size)
		checkPartition(t, total, shards)
		if total > 0 && size >= 1 {
			for i, sh := range shards {
				if sh.Len() > size {
					t.Fatalf("shard %d holds %d units, cap %d", i, sh.Len(), size)
				}
				if sh.Len() < size && i != len(shards)-1 {
					t.Fatalf("non-final shard %d is short: %v", i, sh)
				}
			}
		}
		again := Shards(total, size)
		if len(again) != len(shards) {
			t.Fatalf("partition not deterministic: %d vs %d shards", len(shards), len(again))
		}
		for i := range shards {
			if shards[i] != again[i] {
				t.Fatalf("partition not deterministic at shard %d: %v vs %v", i, shards[i], again[i])
			}
		}
	})
}

// FuzzShardSeq fuzzes the dynamic-size partition the adaptive controller
// produces: an arbitrary sequence of per-lease sizes (decoded from raw
// bytes, biased to include non-positive values) must still cover every
// unit exactly once, deterministically.
func FuzzShardSeq(f *testing.F) {
	f.Add(10, []byte{3, 1, 4, 1, 5})
	f.Add(240, []byte{4, 24, 24, 24})
	f.Add(5, []byte{})
	f.Add(0, []byte{7})
	f.Add(33, []byte{0, 1, 2})
	f.Add(-1, []byte{9})
	f.Fuzz(func(t *testing.T, total int, raw []byte) {
		if total > maxFuzzUnits {
			total %= maxFuzzUnits
		}
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		sizes := make([]int, len(raw))
		for i, b := range raw {
			sizes[i] = int(b) - 8 // bias below zero to exercise clamping
		}
		shards := ShardSeq(total, sizes)
		checkPartition(t, total, shards)
		for i, sh := range shards {
			want := 1
			if i < len(sizes) {
				want = sizes[i]
			} else if len(sizes) > 0 {
				want = sizes[len(sizes)-1]
			}
			if want < 1 {
				want = 1
			}
			if sh.Len() > want {
				t.Fatalf("shard %d holds %d units, requested %d", i, sh.Len(), want)
			}
			if sh.Len() < want && sh.End != total {
				t.Fatalf("non-final shard %d is short: %v, requested %d", i, sh, want)
			}
		}
		again := ShardSeq(total, sizes)
		for i := range shards {
			if shards[i] != again[i] {
				t.Fatalf("partition not deterministic at shard %d: %v vs %v", i, shards[i], again[i])
			}
		}
	})
}
