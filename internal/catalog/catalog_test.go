package catalog

import (
	"math/rand"
	"testing"

	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

// TestEverySchemeCompletes runs each registered task×scheme pairing on a
// small random graph and checks the task's own completion criterion — the
// registry must only hand out pairings that actually work together.
func TestEverySchemeCompletes(t *testing.T) {
	g, err := graphgen.RandomConnected(48, 96, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range Tasks() {
		for _, sc := range task.Schemes {
			t.Run(task.Name+"/"+sc.Name, func(t *testing.T) {
				advice, err := sc.NewOracle(0).Advise(g, 0)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(g, 0, sc.Algo, advice, sim.Options{
					EnforceWakeup: task.EnforceWakeup,
					RetainNodes:   task.NeedsNodes,
					MaxMessages:   MessageBudget(g),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := task.Check(res); err != nil {
					t.Errorf("completion check: %v", err)
				}
			})
		}
	}
}

// TestAliasesResolve pins the historical oraclesim -oracle names onto their
// canonical schemes.
func TestAliasesResolve(t *testing.T) {
	cases := []struct {
		task, alias, canonical string
	}{
		{"wakeup", "paper", "tree"},
		{"wakeup", "none", "flooding"},
		{"broadcast", "paper", "light-tree"},
		{"broadcast", "none", "flooding"},
		{"gossip", "paper", "tree"},
		{"election", "paper", "marked-tree"},
		{"election", "none", "max-label-flood"},
		{"election", "mark", "marked-flood"},
	}
	for _, tc := range cases {
		task, err := TaskByName(tc.task)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := task.SchemeByName(tc.alias)
		if err != nil {
			t.Errorf("%s/%s: %v", tc.task, tc.alias, err)
			continue
		}
		if sc.Name != tc.canonical {
			t.Errorf("%s/%s resolved to %q, want %q", tc.task, tc.alias, sc.Name, tc.canonical)
		}
		// The canonical name must resolve to itself too.
		if direct, err := task.SchemeByName(tc.canonical); err != nil || direct.Name != tc.canonical {
			t.Errorf("%s/%s: canonical lookup failed (%v)", tc.task, tc.canonical, err)
		}
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	if _, err := TaskByName("teleport"); err == nil {
		t.Error("unknown task accepted")
	}
	task, err := TaskByName("wakeup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.SchemeByName("psychic"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := FamilyByName("moebius"); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := SchedulerByName("chaos", 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRegistriesNonEmpty(t *testing.T) {
	if got := TaskNames(); len(got) < 4 {
		t.Errorf("tasks = %v, want at least wakeup/broadcast/gossip/election", got)
	}
	if got := FamilyNames(); len(got) == 0 {
		t.Error("no families")
	}
	names := SchedulerNames()
	if len(names) < 4 {
		t.Errorf("schedulers = %v, want fifo/lifo/random/delay", names)
	}
	for _, name := range names {
		s, err := SchedulerByName(name, 3)
		if err != nil || s == nil {
			t.Errorf("scheduler %s: %v", name, err)
		}
	}
	for _, task := range Tasks() {
		if task.DefaultScheme().Algo == nil {
			t.Errorf("task %s default scheme has no algorithm", task.Name)
		}
	}
}
