// Package catalog is the single source of truth for the names that select
// this repository's moving parts: distributed tasks, their oracle/algorithm
// scheme pairings, graph families, and delivery schedulers. The CLIs
// (oraclesim, campaign) and the oracled service all resolve user-facing
// names through this registry, so one name means the same configuration
// everywhere — a spec written for the campaign CLI selects the exact
// schemes the HTTP API serves.
//
// Scheme names come in two historical dialects: campaign records use
// construction names ("tree", "light-tree", "flooding") while oraclesim's
// -oracle flag used knowledge names ("paper", "none", "full-map", "mark").
// The catalog treats the construction names as canonical and registers the
// knowledge names as aliases, so both keep resolving.
package catalog

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"oraclesize/internal/broadcast"
	"oraclesize/internal/election"
	"oraclesize/internal/gossip"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/wakeup"
)

// Scheme pairs an oracle with the algorithm that consumes its advice, under
// the names users select it by.
type Scheme struct {
	// Name is the canonical scheme name; campaign records carry it.
	Name string
	// Aliases are alternate names accepted by SchemeByName.
	Aliases []string
	// NewOracle builds the oracle for a run from the given source. Most
	// oracles ignore the source; gossip roots its convergecast tree there.
	NewOracle func(source graph.NodeID) oracle.Oracle
	// Algo is the node-automaton algorithm consuming the advice.
	Algo scheme.Algorithm
}

// Task is one distributed task: its legality constraint, its completion
// criterion, and the registered schemes that solve it.
type Task struct {
	// Name is the task name ("wakeup", "broadcast", "gossip", "election").
	Name string
	// EnforceWakeup makes runs fail if a non-source node transmits before
	// its first delivery — the defining constraint of wakeup schemes.
	EnforceWakeup bool
	// NeedsNodes marks tasks whose completion check inspects the retained
	// automata; runs must set sim.Options.RetainNodes (election decisions
	// live in the final node states).
	NeedsNodes bool
	// Schemes lists the registered pairings, first is the paper's default.
	Schemes []Scheme

	check func(res *sim.Result) error
}

// Check reports whether a finished run completed the task: dissemination
// tasks require every node informed; election requires a valid unanimous
// decision among the retained automata.
func (t Task) Check(res *sim.Result) error {
	if t.check == nil {
		return fmt.Errorf("catalog: task %q has no completion check", t.Name)
	}
	return t.check(res)
}

// SchemeNames lists the task's canonical scheme names in registry order.
func (t Task) SchemeNames() []string {
	names := make([]string, len(t.Schemes))
	for i, sc := range t.Schemes {
		names[i] = sc.Name
	}
	return names
}

// SchemeByName resolves a canonical scheme name or one of its aliases.
func (t Task) SchemeByName(name string) (Scheme, error) {
	for _, sc := range t.Schemes {
		if sc.Name == name {
			return sc, nil
		}
		for _, a := range sc.Aliases {
			if a == name {
				return sc, nil
			}
		}
	}
	return Scheme{}, fmt.Errorf("catalog: task %q has no scheme %q (have %s)",
		t.Name, name, strings.Join(t.SchemeNames(), " | "))
}

// DefaultScheme returns the task's first registered scheme — the paper's
// construction where one exists.
func (t Task) DefaultScheme() Scheme { return t.Schemes[0] }

func allInformed(res *sim.Result) error {
	if !res.AllInformed {
		return fmt.Errorf("catalog: dissemination incomplete")
	}
	return nil
}

// fixedOracle adapts a source-independent oracle to the NewOracle shape.
func fixedOracle(o oracle.Oracle) func(graph.NodeID) oracle.Oracle {
	return func(graph.NodeID) oracle.Oracle { return o }
}

// Tasks returns the registered tasks. The slice and its entries are fresh
// on every call; callers may reorder or filter freely.
func Tasks() []Task {
	return []Task{
		{
			Name:          "wakeup",
			EnforceWakeup: true,
			check:         allInformed,
			Schemes: []Scheme{
				{Name: "tree", Aliases: []string{"paper"},
					NewOracle: fixedOracle(wakeup.Oracle{}), Algo: wakeup.Algorithm{}},
				{Name: "flooding", Aliases: []string{"none"},
					NewOracle: fixedOracle(oracle.Empty{}), Algo: wakeup.Flooding{}},
				{Name: "full-map",
					NewOracle: fixedOracle(oracle.FullMap{}), Algo: wakeup.FullMapAlgorithm{}},
			},
		},
		{
			Name:  "broadcast",
			check: allInformed,
			Schemes: []Scheme{
				{Name: "light-tree", Aliases: []string{"paper"},
					NewOracle: fixedOracle(broadcast.Oracle{}), Algo: broadcast.Algorithm{}},
				{Name: "flooding", Aliases: []string{"none"},
					NewOracle: fixedOracle(oracle.Empty{}), Algo: broadcast.Flooding{}},
				{Name: "full-map",
					NewOracle: fixedOracle(oracle.FullMap{}), Algo: wakeup.FullMapAlgorithm{}},
			},
		},
		{
			Name:  "gossip",
			check: allInformed,
			Schemes: []Scheme{
				{Name: "tree", Aliases: []string{"paper"},
					NewOracle: func(source graph.NodeID) oracle.Oracle { return gossip.Oracle{Root: source} },
					Algo:      gossip.Algorithm{}},
			},
		},
		{
			Name:       "election",
			NeedsNodes: true,
			check: func(res *sim.Result) error {
				return election.Verify(res.Nodes)
			},
			Schemes: []Scheme{
				{Name: "marked-tree", Aliases: []string{"paper"},
					NewOracle: fixedOracle(election.TreeOracle{}), Algo: election.MarkedTree{}},
				{Name: "max-label-flood", Aliases: []string{"none", "flooding"},
					NewOracle: fixedOracle(oracle.Empty{}), Algo: election.MaxLabelFlood{}},
				{Name: "marked-flood", Aliases: []string{"mark"},
					NewOracle: fixedOracle(election.MarkOracle{}), Algo: election.MarkedFlood{}},
			},
		},
	}
}

// TaskNames lists the registered task names in registry order.
func TaskNames() []string {
	tasks := Tasks()
	names := make([]string, len(tasks))
	for i, t := range tasks {
		names[i] = t.Name
	}
	return names
}

// TaskByName resolves a task name.
func TaskByName(name string) (Task, error) {
	for _, t := range Tasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("catalog: unknown task %q (have %s)",
		name, strings.Join(TaskNames(), " | "))
}

// Fingerprint digests every registered name — tasks, their schemes and
// aliases, graph families, schedulers — into a short hex string. Two
// processes with equal fingerprints resolve the same names to the same
// registry entries, which is the precondition for a distributed campaign's
// byte-identical-merge contract: oracleherd compares its own fingerprint
// against the one each worker reports in /healthz and refuses fleets that
// disagree. The digest covers names and registry order, not code, so it
// catches version skew in what is selectable rather than guaranteeing
// identical binaries.
func Fingerprint() string {
	h := sha256.New()
	field := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
		h.Write([]byte{'\n'})
	}
	for _, t := range Tasks() {
		field("task", t.Name)
		for _, sc := range t.Schemes {
			field(append([]string{"scheme", t.Name, sc.Name}, sc.Aliases...)...)
		}
	}
	for _, f := range FamilyNames() {
		field("family", f)
	}
	for _, s := range SchedulerNames() {
		field("scheduler", s)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// MessageBudget is the generous per-run send cap used when a caller does
// not set one: election by max-label flooding legitimately costs O(n·m),
// so the linear default of the simulator is too tight for a shared grid.
func MessageBudget(g *graph.Graph) int { return 4*g.N()*g.M() + 1024 }

// FamilyByName resolves a graph family. graphgen owns the registry; this
// delegation exists so frontends resolve every name through one package.
func FamilyByName(name string) (graphgen.Family, error) {
	return graphgen.FamilyByName(name)
}

// FamilyNames lists the registered graph family names.
func FamilyNames() []string {
	fams := graphgen.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// schedulerOrder fixes the display order of sim.Schedulers' map keys.
var schedulerOrder = []string{"fifo", "lifo", "random", "delay"}

// SchedulerNames lists the registered scheduler names.
func SchedulerNames() []string {
	factories := sim.Schedulers(0)
	names := make([]string, 0, len(factories))
	for _, name := range schedulerOrder {
		if _, ok := factories[name]; ok {
			names = append(names, name)
		}
	}
	// Pick up schedulers sim registers beyond the known order.
	for name := range factories {
		known := false
		for _, k := range schedulerOrder {
			if k == name {
				known = true
				break
			}
		}
		if !known {
			names = append(names, name)
		}
	}
	return names
}

// SchedulerByName builds a fresh scheduler of the named kind; randomized
// schedulers derive their stream from seed.
func SchedulerByName(name string, seed int64) (sim.Scheduler, error) {
	factory, ok := sim.Schedulers(seed)[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown scheduler %q (have %s)",
			name, strings.Join(SchedulerNames(), " | "))
	}
	return factory(), nil
}
