package oracle

import (
	"testing"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graphgen"
)

// FuzzDecodeGraph: arbitrary bit strings either decode to a valid graph or
// error — never panic, never allocate absurdly. Round-tripping a real
// encoding must still succeed (seeded below).
func FuzzDecodeGraph(f *testing.F) {
	g, err := graphgen.Grid(3, 3)
	if err != nil {
		f.Fatal(err)
	}
	enc := EncodeGraph(g)
	seed := make([]byte, 0, enc.Len()/8+1)
	var cur byte
	for i := 0; i < enc.Len(); i++ {
		if enc.Bit(i) {
			cur |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			seed = append(seed, cur)
			cur = 0
		}
	}
	seed = append(seed, cur)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep each execution fast
		}
		var w bitstring.Writer
		for _, b := range data {
			for i := 0; i < 8; i++ {
				w.WriteBit(b&(1<<uint(i)) != 0)
			}
		}
		dec, err := DecodeGraph(w.String())
		if err != nil {
			return
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("decoded graph fails validation: %v", err)
		}
	})
}
