package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
)

func TestEncodeDecodeGraphProperty(t *testing.T) {
	// The graph codec is lossless on arbitrary connected graphs, including
	// ports, labels and adjacency order.
	f := func(seed int64, nSeed, mSeed uint8) bool {
		n := int(nSeed%30) + 2
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mSeed)%(maxM-(n-1)+1)
		g, err := graphgen.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		dec, err := DecodeGraph(EncodeGraph(g))
		if err != nil {
			return false
		}
		if dec.N() != g.N() || dec.M() != g.M() {
			return false
		}
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if dec.Label(v) != g.Label(v) || dec.Degree(v) != g.Degree(v) {
				return false
			}
			for p := 0; p < g.Degree(v); p++ {
				u1, q1 := g.Neighbor(v, p)
				u2, q2 := dec.Neighbor(v, p)
				if u1 != u2 || q1 != q2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFullMapSizeScalesWithEdgesProperty(t *testing.T) {
	// The full map costs Θ(n·m·log n) bits: strictly more edges means
	// strictly more bits at fixed n.
	rng := rand.New(rand.NewSource(77))
	n := 40
	var prev int
	for _, m := range []int{39, 100, 300, 700} {
		g, err := graphgen.RandomConnected(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		advice, err := FullMap{}.Advise(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if advice.SizeBits() <= prev {
			t.Errorf("m=%d: full map %d bits not above previous %d", m, advice.SizeBits(), prev)
		}
		prev = advice.SizeBits()
	}
}
