// Package oracle defines the paper's central object: an oracle is a function
// that looks at the entire labeled network and assigns each node a binary
// string; the oracle's size on a network is the total number of assigned
// bits. The minimum oracle size for which a task becomes solvable with a
// given efficiency is the paper's difficulty measure.
//
// This package holds the Oracle interface, size accounting, a bit-exact
// graph codec (used by the full-map baseline), and the trivial oracles that
// bracket the paper's constructions from below (empty) and above (full map).
// The constructions themselves live in the wakeup and broadcast packages.
package oracle

import (
	"fmt"
	"sort"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/sim"
)

// Oracle assigns advice strings to the nodes of a network. Implementations
// see the whole graph and the source, like the paper's oracle O with
// O(G) = f.
type Oracle interface {
	// Name identifies the oracle in experiment tables.
	Name() string
	// Advise computes the advice assignment for g with the given source.
	Advise(g *graph.Graph, source graph.NodeID) (sim.Advice, error)
}

// SizeStats summarizes an advice assignment.
type SizeStats struct {
	// TotalBits is the oracle size (the paper's measure).
	TotalBits int
	// MaxNodeBits is the largest single advice string.
	MaxNodeBits int
	// NonEmptyNodes counts nodes with at least one advice bit.
	NonEmptyNodes int
}

// Stats computes size statistics for an advice assignment.
func Stats(a sim.Advice) SizeStats {
	var s SizeStats
	for _, str := range a {
		s.TotalBits += str.Len()
		if str.Len() > s.MaxNodeBits {
			s.MaxNodeBits = str.Len()
		}
		if str.Len() > 0 {
			s.NonEmptyNodes++
		}
	}
	return s
}

// Empty is the zero-knowledge oracle: every node gets the empty string.
// With it, broadcast degenerates to flooding and wakeup to flooding from
// the source.
type Empty struct{}

// Name implements Oracle.
func (Empty) Name() string { return "empty" }

// Advise implements Oracle.
func (Empty) Advise(*graph.Graph, graph.NodeID) (sim.Advice, error) {
	return sim.Advice{}, nil
}

// FullMap is the classic "full topology knowledge" assumption expressed as
// an oracle: every node receives a complete encoding of the labeled
// port-numbered graph plus the source's index. Its size is Θ(n·m·log n)
// bits — the baseline the paper's O(n log n) and O(n) oracles undercut.
type FullMap struct{}

// Name implements Oracle.
func (FullMap) Name() string { return "full-map" }

// Advise implements Oracle.
func (FullMap) Advise(g *graph.Graph, source graph.NodeID) (sim.Advice, error) {
	enc := EncodeGraph(g)
	var w bitstring.Writer
	w.WriteString(enc)
	w.WriteFixed(uint64(source), FieldWidth(g.N()))
	per := w.String()
	advice := make(sim.Advice, g.N())
	for v := 0; v < g.N(); v++ {
		advice[graph.NodeID(v)] = per
	}
	return advice, nil
}

// Neighborhood gives each node the labels of its neighbors in port order —
// the traditional "knowing your neighborhood" assumption, measured in bits.
// No algorithm in this repository consumes it; it exists to place classical
// knowledge assumptions on the paper's quantitative scale.
type Neighborhood struct{}

// Name implements Oracle.
func (Neighborhood) Name() string { return "neighborhood" }

// Advise implements Oracle.
func (Neighborhood) Advise(g *graph.Graph, _ graph.NodeID) (sim.Advice, error) {
	advice := make(sim.Advice, g.N())
	for v := 0; v < g.N(); v++ {
		var w bitstring.Writer
		for p := 0; p < g.Degree(graph.NodeID(v)); p++ {
			u, _ := g.Neighbor(graph.NodeID(v), p)
			w.AppendGamma0(uint64(g.Label(u)))
		}
		advice[graph.NodeID(v)] = w.String()
	}
	return advice, nil
}

// FieldWidth returns the number of bits needed to index n items (at least 1).
func FieldWidth(n int) int {
	w := 1
	for (1 << uint(w)) < n {
		w++
	}
	return w
}

// EncodeGraph serializes a labeled port-numbered graph into a bit string:
// gamma-coded n, the node labels in ID order, then each node's port table
// (neighbor index and reverse port in fixed-width fields). DecodeGraph
// inverts it exactly.
func EncodeGraph(g *graph.Graph) bitstring.String {
	n := g.N()
	var w bitstring.Writer
	w.AppendGamma0(uint64(n))
	maxDeg := g.MaxDegree()
	w.AppendGamma0(uint64(maxDeg))
	for v := 0; v < n; v++ {
		w.AppendGamma0(uint64(g.Label(graph.NodeID(v))))
	}
	nodeW := FieldWidth(n)
	portW := FieldWidth(maxInt(maxDeg, 1))
	for v := 0; v < n; v++ {
		w.AppendGamma0(uint64(g.Degree(graph.NodeID(v))))
		for p := 0; p < g.Degree(graph.NodeID(v)); p++ {
			u, q := g.Neighbor(graph.NodeID(v), p)
			w.WriteFixed(uint64(u), nodeW)
			w.WriteFixed(uint64(q), portW)
		}
	}
	return w.String()
}

// DecodeGraph parses a string produced by EncodeGraph.
func DecodeGraph(s bitstring.String) (*graph.Graph, error) {
	return DecodeGraphReader(bitstring.NewReader(s))
}

// DecodeGraphReader parses one EncodeGraph record from r, leaving the
// reader positioned after it (the full-map advice appends the source index
// behind the graph).
func DecodeGraphReader(r *bitstring.Reader) (*graph.Graph, error) {
	n64, err := r.ReadGamma0()
	if err != nil {
		return nil, fmt.Errorf("oracle: decoding node count: %w", err)
	}
	maxDeg64, err := r.ReadGamma0()
	if err != nil {
		return nil, fmt.Errorf("oracle: decoding max degree: %w", err)
	}
	// Sanity bounds: reject adversarial headers before allocating. The
	// codec is for advice strings, not multi-gigabyte networks.
	const maxNodes = 1 << 24
	if n64 == 0 || n64 > maxNodes {
		return nil, fmt.Errorf("oracle: implausible node count %d", n64)
	}
	if maxDeg64 >= n64 {
		return nil, fmt.Errorf("oracle: max degree %d >= n %d", maxDeg64, n64)
	}
	n := int(n64)
	maxDeg := int(maxDeg64)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		label, err := r.ReadGamma0()
		if err != nil {
			return nil, fmt.Errorf("oracle: decoding label of node %d: %w", v, err)
		}
		b.SetLabel(graph.NodeID(v), int64(label))
	}
	nodeW := FieldWidth(n)
	portW := FieldWidth(maxInt(maxDeg, 1))
	type half struct {
		u, v graph.NodeID
		p, q int
	}
	var halves []half
	for v := 0; v < n; v++ {
		deg, err := r.ReadGamma0()
		if err != nil {
			return nil, fmt.Errorf("oracle: decoding degree of node %d: %w", v, err)
		}
		if deg > maxDeg64 {
			return nil, fmt.Errorf("oracle: node %d degree %d exceeds declared max %d", v, deg, maxDeg64)
		}
		for p := 0; p < int(deg); p++ {
			u, err := r.ReadFixed(nodeW)
			if err != nil {
				return nil, fmt.Errorf("oracle: decoding port %d of node %d: %w", p, v, err)
			}
			q, err := r.ReadFixed(portW)
			if err != nil {
				return nil, fmt.Errorf("oracle: decoding reverse port %d of node %d: %w", p, v, err)
			}
			if graph.NodeID(v) < graph.NodeID(u) {
				halves = append(halves, half{u: graph.NodeID(v), v: graph.NodeID(u), p: p, q: int(q)})
			}
		}
	}
	// Deterministic edge insertion order.
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].u != halves[j].u {
			return halves[i].u < halves[j].u
		}
		return halves[i].v < halves[j].v
	})
	for _, h := range halves {
		b.AddEdge(h.u, h.p, h.v, h.q)
	}
	return b.Graph()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
