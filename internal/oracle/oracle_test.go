package oracle

import (
	"math/rand"
	"testing"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	t.Helper()
	return func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestEmptyOracle(t *testing.T) {
	g := mustGraph(t)(graphgen.Grid(3, 3))
	advice, err := Empty{}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if advice.SizeBits() != 0 {
		t.Errorf("empty oracle size = %d", advice.SizeBits())
	}
	s := Stats(advice)
	if s.TotalBits != 0 || s.NonEmptyNodes != 0 || s.MaxNodeBits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStats(t *testing.T) {
	a := sim.Advice{
		0: bitstring.FromBits(1, 0, 1),
		1: bitstring.FromBits(0),
		2: bitstring.String{},
	}
	s := Stats(a)
	if s.TotalBits != 4 || s.MaxNodeBits != 3 || s.NonEmptyNodes != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEncodeDecodeGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := []*graph.Graph{
		mustGraph(t)(graphgen.Path(2)),
		mustGraph(t)(graphgen.Cycle(7)),
		mustGraph(t)(graphgen.Star(9)),
		mustGraph(t)(graphgen.Grid(4, 5)),
		mustGraph(t)(graphgen.Complete(8)),
		mustGraph(t)(graphgen.RandomConnected(25, 60, rng)),
	}
	for i, g := range graphs {
		enc := EncodeGraph(g)
		dec, err := DecodeGraph(enc)
		if err != nil {
			t.Errorf("graph %d: decode: %v", i, err)
			continue
		}
		if dec.N() != g.N() || dec.M() != g.M() {
			t.Errorf("graph %d: size mismatch %d/%d vs %d/%d", i, dec.N(), dec.M(), g.N(), g.M())
			continue
		}
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if dec.Label(v) != g.Label(v) {
				t.Errorf("graph %d: label of %d changed", i, v)
			}
			for p := 0; p < g.Degree(v); p++ {
				u1, q1 := g.Neighbor(v, p)
				u2, q2 := dec.Neighbor(v, p)
				if u1 != u2 || q1 != q2 {
					t.Errorf("graph %d: port %d at %d differs: %d:%d vs %d:%d", i, p, v, u1, q1, u2, q2)
				}
			}
		}
	}
}

func TestDecodeGraphRejectsGarbage(t *testing.T) {
	if _, err := DecodeGraph(bitstring.FromBits(0, 0, 0)); err == nil {
		t.Error("garbage decoded")
	}
	var empty bitstring.String
	if _, err := DecodeGraph(empty); err == nil {
		t.Error("empty string decoded")
	}
}

func TestDecodeGraphReaderLeavesTrailingBits(t *testing.T) {
	g := mustGraph(t)(graphgen.Cycle(5))
	var w bitstring.Writer
	w.WriteString(EncodeGraph(g))
	w.WriteFixed(3, 4) // trailing payload, e.g. the full-map source index
	r := bitstring.NewReader(w.String())
	if _, err := DecodeGraphReader(r); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 4 {
		t.Fatalf("remaining = %d, want 4", r.Remaining())
	}
	v, err := r.ReadFixed(4)
	if err != nil || v != 3 {
		t.Errorf("trailing read = %d, %v", v, err)
	}
}

func TestFullMapOracle(t *testing.T) {
	g := mustGraph(t)(graphgen.Grid(3, 4))
	advice, err := FullMap{}.Advise(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != g.N() {
		t.Fatalf("advice for %d nodes, want %d", len(advice), g.N())
	}
	// Every node gets the same string, and it decodes back to g + source.
	first := advice[0]
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !advice[v].Equal(first) {
			t.Errorf("node %d advice differs", v)
		}
	}
	r := bitstring.NewReader(first)
	dec, err := DecodeGraphReader(r)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != g.N() {
		t.Errorf("decoded n = %d", dec.N())
	}
	src, err := r.ReadFixed(FieldWidth(g.N()))
	if err != nil || src != 2 {
		t.Errorf("source = %d, %v", src, err)
	}
	// Full map is Ω(n·m) bits — enormously bigger than the paper's oracles.
	if advice.SizeBits() < g.N()*g.M() {
		t.Errorf("full map suspiciously small: %d bits", advice.SizeBits())
	}
}

func TestNeighborhoodOracle(t *testing.T) {
	g := mustGraph(t)(graphgen.Star(6))
	advice, err := Neighborhood{}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The center's advice lists 5 labels; each leaf lists 1.
	center := advice[0]
	r := bitstring.NewReader(center)
	for i := 0; i < 5; i++ {
		label, err := r.ReadGamma0()
		if err != nil {
			t.Fatal(err)
		}
		u, _ := g.Neighbor(0, i)
		if int64(label) != g.Label(u) {
			t.Errorf("neighbor %d label = %d, want %d", i, label, g.Label(u))
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("center advice has %d trailing bits", r.Remaining())
	}
}

func TestFieldWidth(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tc := range tests {
		if got := FieldWidth(tc.n); got != tc.want {
			t.Errorf("FieldWidth(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
