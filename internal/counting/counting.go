// Package counting reproduces the paper's counting arguments with exact
// big-integer arithmetic: the instance counts P (Equations 2 and 6), the
// oracle-output counts Q (Equations 3 and 7), Claim 2.1, and the forced
// message complexities of Theorem 2.2 (wakeup) and Theorem 3.2 / Claim 3.3
// (broadcast). These are the numbers behind the lower-bound "curves" the
// experiments regenerate.
package counting

import (
	"fmt"
	"math"
	"math/big"
)

// Binomial returns C(n, k) exactly; it is 0 for k < 0 or k > n.
func Binomial(n, k int64) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(n, k)
}

// Factorial returns n! exactly.
func Factorial(n int64) *big.Int {
	return new(big.Int).MulRange(1, n)
}

// FallingFactorial returns n·(n-1)···(n-k+1) exactly (the number of ordered
// k-tuples of distinct items from n).
func FallingFactorial(n, k int64) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	if k == 0 {
		return big.NewInt(1)
	}
	return new(big.Int).MulRange(n-k+1, n)
}

// Log2 returns log2(x) as a float64 for a positive big integer, accurate to
// well under one bit even for numbers with millions of bits.
func Log2(x *big.Int) float64 {
	if x.Sign() <= 0 {
		return math.Inf(-1)
	}
	bits := x.BitLen()
	// Use the top 53 significant bits as the mantissa.
	shift := bits - 53
	if shift < 0 {
		shift = 0
	}
	top := new(big.Int).Rsh(x, uint(shift))
	f, _ := new(big.Float).SetInt(top).Float64()
	return math.Log2(f) + float64(shift)
}

// Log2Ratio returns log2(a/b) for positive big integers.
func Log2Ratio(a, b *big.Int) float64 {
	return Log2(a) - Log2(b)
}

// WakeupInstances is the paper's P for Theorem 2.2: the number of graphs
// G_{n,S} over all n-tuples S of distinct edges of K*_n, i.e. the falling
// factorial of C(n,2) over n, equal to n!·C(C(n,2), n).
func WakeupInstances(n int64) *big.Int {
	edges := n * (n - 1) / 2
	return FallingFactorial(edges, n)
}

// OracleOutputs is the paper's Q (Equation 3): the number of distinct
// advice assignments an oracle of size at most q bits can produce for
// graphs with `nodes` nodes:
//
//	Q = Σ_{q'=0}^{q} 2^{q'} · C(q'+nodes-1, nodes-1)
//
// (each total length q' can be split into `nodes` ordered, possibly empty
// strings in C(q'+nodes-1, nodes-1) ways).
func OracleOutputs(q, nodes int64) *big.Int {
	total := new(big.Int)
	// term(q') = 2^q'·C(q'+nodes-1, nodes-1); maintained incrementally via
	// term(q'+1) = term(q') · 2(q'+nodes)/(q'+1).
	term := big.NewInt(1)
	for qp := int64(0); ; qp++ {
		total.Add(total, term)
		if qp == q {
			return total
		}
		term.Mul(term, big.NewInt(2*(qp+nodes)))
		term.Div(term, big.NewInt(qp+1))
	}
}

// OracleOutputsUpper is the paper's closed-form upper bound on Q used in
// the proof: (q+1)·2^q·C(q+nodes, nodes).
func OracleOutputsUpper(q, nodes int64) *big.Int {
	out := new(big.Int).Lsh(big.NewInt(1), uint(q))
	out.Mul(out, big.NewInt(q+1))
	out.Mul(out, Binomial(q+nodes, nodes))
	return out
}

// WakeupBound holds one evaluation of the Theorem 2.2 machinery for a
// (2n)-node family with an oracle budget of q = α·(2n)·log2(2n) bits.
type WakeupBound struct {
	N          int64   // half the node count (the K*_n part)
	Alpha      float64 // oracle budget coefficient
	QBits      int64   // oracle budget in bits
	Log2P      float64 // log2 of the instance count (Equation 2, exact)
	Log2Q      float64 // log2 of the output count (exact sum, Equation 3)
	ForcedMsgs float64 // Lemma 2.1 bound: log2(P/Q) - log2(n!)
	ClosedForm float64 // the paper's (1-2β)·n·log2(n/2) with β = 1/4+α/2
}

// WakeupForced evaluates the Theorem 2.2 lower bound exactly: with an
// oracle of at most q = α(2n)log(2n) bits on 2n-node graphs, some G_{n,S}
// forces at least log2(P/Q) - log2(n!) messages.
func WakeupForced(n int64, alpha float64) WakeupBound {
	nodes := 2 * n
	q := int64(alpha * float64(nodes) * math.Log2(float64(nodes)))
	p := WakeupInstances(n)
	qCount := OracleOutputs(q, nodes)
	forced := Log2Ratio(p, qCount) - Log2(Factorial(n))
	beta := 0.25 + alpha/2
	closed := (1 - 2*beta) * float64(n) * math.Log2(float64(n)/2)
	return WakeupBound{
		N:          n,
		Alpha:      alpha,
		QBits:      q,
		Log2P:      Log2(p),
		Log2Q:      Log2(qCount),
		ForcedMsgs: forced,
		ClosedForm: closed,
	}
}

// Claim21Holds checks the paper's Claim 2.1 instance-by-instance:
// C(a(1+b), a) <= (6b)^a.
func Claim21Holds(a, b int64) bool {
	lhs := Binomial(a*(1+b), a)
	rhs := new(big.Int).Exp(big.NewInt(6*b), big.NewInt(a), nil)
	return lhs.Cmp(rhs) <= 0
}

// BroadcastBound holds one evaluation of the Theorem 3.2 / Claim 3.3
// machinery on the family G_{n,k} (2n nodes, n/k cliques of size k).
type BroadcastBound struct {
	N, K       int64
	QBits      int64   // oracle budget n/(2k) from Claim 3.3
	Log2PPrime float64 // log2 P' (Equation 6, exact)
	Log2Q      float64 // log2 Q for the budget (exact sum)
	ForcedMsgs float64 // Lemma 2.1: log2(P'/Q)
	Threshold  float64 // the contradiction threshold n(k-1)/8
}

// BroadcastForced evaluates Claim 3.3's counting exactly. The instance
// count for fixed Y (|Y| = 3n/4k known non-special edges) and |X| = n/4k
// hidden special edges is P = |X|!·P' with
// P' = C(C(n,2) - 3n/(4k), n/(4k)); an oracle of q = n/(2k) bits yields at
// most Q outputs; Lemma 2.1 then forces log2(P'/Q) messages, which Claim
// 3.3 plays against the threshold n(k-1)/8.
func BroadcastForced(n, k int64) (BroadcastBound, error) {
	if k < 3 || n%(4*k) != 0 {
		return BroadcastBound{}, errBroadcastParams(n, k)
	}
	edges := n * (n - 1) / 2
	x := n / (4 * k)
	y := 3 * n / (4 * k)
	pPrime := Binomial(edges-y, x)
	q := n / (2 * k)
	nodes := 2 * n
	qCount := OracleOutputs(q, nodes)
	forced := Log2Ratio(pPrime, qCount)
	return BroadcastBound{
		N:          n,
		K:          k,
		QBits:      q,
		Log2PPrime: Log2(pPrime),
		Log2Q:      Log2(qCount),
		ForcedMsgs: forced,
		Threshold:  float64(n) * float64(k-1) / 8,
	}, nil
}

func errBroadcastParams(n, k int64) error {
	return fmt.Errorf("counting: need k >= 3 and 4k | n, got n=%d k=%d", n, k)
}

// Stirling bounds used in the Claim 2.1 proof: sqrt(2πn)(n/e)^n /2 <= n! <=
// 2·sqrt(2πn)(n/e)^n for n past a small threshold. StirlingSandwiched
// reports whether the sandwich holds for n.
func StirlingSandwiched(n int64) bool {
	fact := Log2(Factorial(n))
	nf := float64(n)
	stirling := 0.5*math.Log2(2*math.Pi*nf) + nf*math.Log2(nf/math.E)
	return stirling-1 <= fact && fact <= stirling+1
}
