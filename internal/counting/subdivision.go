package counting

import (
	"fmt"
	"math"
)

// This file generalizes the Theorem 2.2 counting to the remark that follows
// it: hiding c·n subdivision nodes (instead of n) pushes the oracle-size
// threshold coefficient from 1/2 up to c/(c+1). The instance family is the
// set of ordered (c·n)-tuples of distinct K*_n edges; the graphs have
// N = (1+c)·n nodes; the oracle budget is α·N·log2(N) bits; Lemma 2.1
// forces log2(P/Q) - log2((cn)!) messages.

// SubdivisionBound is one evaluation of the c-fold machinery.
type SubdivisionBound struct {
	N          int64   // base complete-graph size
	C          int64   // subdivision multiplicity
	Nodes      int64   // (1+c)·n
	Alpha      float64 // oracle budget coefficient
	QBits      int64
	ForcedMsgs float64
	// Threshold is the asymptotic coefficient c/(c+1) the remark proves.
	Threshold float64
}

// SubdivisionForcedAnalytic evaluates the c-fold bound with log-gamma
// arithmetic. It requires c·n <= C(n,2), i.e. c <= (n-1)/2.
func SubdivisionForcedAnalytic(n, c int64, alpha float64) (SubdivisionBound, error) {
	if c < 1 || n < 3 {
		return SubdivisionBound{}, fmt.Errorf("counting: need c >= 1 and n >= 3, got c=%d n=%d", c, n)
	}
	hidden := c * n
	nf := float64(n)
	edges := nf * (nf - 1) / 2
	if float64(hidden) > edges {
		return SubdivisionBound{}, fmt.Errorf("counting: cannot hide %d edges among %.0f", hidden, edges)
	}
	nodes := (1 + c) * n
	qf := alpha * float64(nodes) * math.Log2(float64(nodes))
	if qf > float64(1)*(1<<62) {
		return SubdivisionBound{}, fmt.Errorf("counting: oracle budget %.3g bits overflows int64", qf)
	}
	q := int64(qf)
	log2P := log2FallingF(edges, float64(hidden))
	log2Q := Log2OracleOutputs(q, nodes)
	return SubdivisionBound{
		N:          n,
		C:          c,
		Nodes:      nodes,
		Alpha:      alpha,
		QBits:      q,
		ForcedMsgs: log2P - log2Q - log2FactorialF(float64(hidden)),
		Threshold:  float64(c) / float64(c+1),
	}, nil
}

// CriticalAlpha bisects the largest oracle-budget coefficient at which the
// c-fold lower bound still forces a positive message count at this n. As n
// grows it climbs toward the remark's asymptotic threshold c/(c+1).
func CriticalAlpha(n, c int64) (float64, error) {
	lo, hi := 0.0, 1.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		b, err := SubdivisionForcedAnalytic(n, c, mid)
		if err != nil {
			return 0, err
		}
		if b.ForcedMsgs > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
