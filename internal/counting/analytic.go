package counting

import (
	"fmt"
	"math"
)

// This file provides log-gamma-based evaluations of the same quantities as
// counting.go, usable at sizes (n up to 2^60 and beyond) where the exact
// big-integer sums would be infeasible. All internal arithmetic is float64
// so that intermediate counts like C(n,2) ~ n^2/2 cannot overflow. Tests
// pin the analytic versions to the exact ones on overlapping ranges.
//
// Both lower-bound theorems are asymptotic: the exact forced-message bounds
// are negative at laptop-scale n and cross zero around n = 2^14..2^16 (see
// EXPERIMENTS.md); the analytic forms here are what make the crossover and
// the Θ(n log n) growth observable.

// Log2Factorial returns log2(n!) via the log-gamma function.
func Log2Factorial(n int64) float64 { return log2FactorialF(float64(n)) }

func log2FactorialF(n float64) float64 {
	if n <= 1 {
		return 0
	}
	lg, _ := math.Lgamma(n + 1)
	return lg / math.Ln2
}

// Log2Binomial returns log2 C(n, k) via log-gamma; -Inf outside the range.
func Log2Binomial(n, k int64) float64 { return log2BinomialF(float64(n), float64(k)) }

func log2BinomialF(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return log2FallingF(n, k) - log2FactorialF(k)
}

// Log2FallingFactorial returns log2(n·(n-1)···(n-k+1)).
func Log2FallingFactorial(n, k int64) float64 { return log2FallingF(float64(n), float64(k)) }

// log2FallingF computes log2 of the falling factorial without the
// catastrophic cancellation of lgamma(n+1) - lgamma(n-k+1): when k << n
// both lgamma values are ~n·ln n while the result is only ~k·ln n, so the
// naive difference loses all precision for n beyond ~2^45. The Stirling
// difference is instead arranged as
//
//	ln falling = -(n-k+1/2)·ln(1 - k/n) + k·ln(n) - k + series terms
//
// whose summands are all of the result's own magnitude.
func log2FallingF(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 {
		return 0
	}
	if k == n {
		return log2FactorialF(n)
	}
	if n < 1e8 {
		// Plain lgamma is exact enough here and handles small-argument
		// regimes where Stirling's series is weakest.
		return log2FactorialF(n) - log2FactorialF(n-k)
	}
	r := n - k
	// Stirling with the 1/(12x) correction; for x >= 1e7 the next term is
	// far below float64 noise.
	lnFalling := -(r+0.5)*math.Log1p(-k/n) + k*math.Log(n) - k + 1/(12*n) - 1/(12*math.Max(r, 1))
	return lnFalling / math.Ln2
}

// Log2WakeupInstances is the analytic form of log2 P for Theorem 2.2.
func Log2WakeupInstances(n int64) float64 {
	nf := float64(n)
	edges := nf * (nf - 1) / 2
	return log2FallingF(edges, nf)
}

// Log2OracleOutputs evaluates log2 Q analytically. The summand
// T(q') = 2^q'·C(q'+nodes-1, nodes-1) grows by a factor
// r(q') = 2(q'+nodes)/(q'+1) >= 2 at each step, so the tail below the last
// term converges geometrically; summing a few hundred trailing terms in
// floating point captures Q to machine precision.
func Log2OracleOutputs(q, nodes int64) float64 {
	if q < 0 {
		return math.Inf(-1)
	}
	logTop := float64(q) + log2BinomialF(float64(q+nodes-1), float64(nodes-1))
	// acc = Q / T(q) = 1 + 1/r(q-1) + 1/(r(q-1)r(q-2)) + ...
	acc := 1.0
	weight := 1.0
	for qp := q - 1; qp >= 0 && qp > q-400; qp-- {
		ratio := 2 * float64(qp+nodes) / float64(qp+1)
		weight /= ratio
		acc += weight
		if weight < 1e-18 {
			break
		}
	}
	return logTop + math.Log2(acc)
}

// WakeupForcedAnalytic is WakeupForced evaluated with log-gamma arithmetic;
// usable while the bit budget α·2n·log2(2n) fits in int64 (n up to ~2^54).
func WakeupForcedAnalytic(n int64, alpha float64) WakeupBound {
	nodes := 2 * n
	qf := alpha * float64(nodes) * math.Log2(float64(nodes))
	if qf > float64(1)*(1<<62) {
		panic(fmt.Sprintf("counting: oracle budget %.3g bits overflows int64", qf))
	}
	q := int64(qf)
	log2P := Log2WakeupInstances(n)
	log2Q := Log2OracleOutputs(q, nodes)
	beta := 0.25 + alpha/2
	return WakeupBound{
		N:          n,
		Alpha:      alpha,
		QBits:      q,
		Log2P:      log2P,
		Log2Q:      log2Q,
		ForcedMsgs: log2P - log2Q - Log2Factorial(n),
		ClosedForm: (1 - 2*beta) * float64(n) * math.Log2(float64(n)/2),
	}
}

// BroadcastForcedAnalytic is BroadcastForced evaluated with log-gamma
// arithmetic.
func BroadcastForcedAnalytic(n, k int64) (BroadcastBound, error) {
	if k < 3 || n%(4*k) != 0 {
		return BroadcastBound{}, errBroadcastParams(n, k)
	}
	nf := float64(n)
	edges := nf * (nf - 1) / 2
	x := nf / (4 * float64(k))
	y := 3 * nf / (4 * float64(k))
	q := n / (2 * k)
	nodes := 2 * n
	log2PPrime := log2BinomialF(edges-y, x)
	log2Q := Log2OracleOutputs(q, nodes)
	return BroadcastBound{
		N:          n,
		K:          k,
		QBits:      q,
		Log2PPrime: log2PPrime,
		Log2Q:      log2Q,
		ForcedMsgs: log2PPrime - log2Q,
		Threshold:  nf * float64(k-1) / 8,
	}, nil
}
