package counting

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int64
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, tc := range tests {
		if got := Binomial(tc.n, tc.k); got.Int64() != tc.want {
			t.Errorf("C(%d,%d) = %v, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestFactorialAndFalling(t *testing.T) {
	if Factorial(0).Int64() != 1 || Factorial(5).Int64() != 120 {
		t.Error("factorial broken")
	}
	if FallingFactorial(6, 3).Int64() != 120 {
		t.Errorf("6·5·4 = %v", FallingFactorial(6, 3))
	}
	if FallingFactorial(5, 0).Int64() != 1 {
		t.Error("empty product != 1")
	}
	if FallingFactorial(3, 5).Sign() != 0 {
		t.Error("overlong falling factorial != 0")
	}
}

func TestFallingEqualsBinomialTimesFactorial(t *testing.T) {
	f := func(nSeed, kSeed uint8) bool {
		n := int64(nSeed%40) + 1
		k := int64(kSeed) % (n + 1)
		lhs := FallingFactorial(n, k)
		rhs := new(big.Int).Mul(Binomial(n, k), Factorial(k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Exact(t *testing.T) {
	for _, tc := range []struct {
		x    int64
		want float64
	}{{1, 0}, {2, 1}, {1024, 10}, {3, math.Log2(3)}} {
		if got := Log2(big.NewInt(tc.x)); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Log2(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
	// A huge number: 2^1000.
	huge := new(big.Int).Lsh(big.NewInt(1), 1000)
	if got := Log2(huge); math.Abs(got-1000) > 1e-6 {
		t.Errorf("Log2(2^1000) = %v", got)
	}
	if !math.IsInf(Log2(big.NewInt(0)), -1) {
		t.Error("Log2(0) not -Inf")
	}
}

func TestWakeupInstancesSmall(t *testing.T) {
	// n = 4: C(4,2) = 6 edges, ordered 4-tuples: 6·5·4·3 = 360.
	if got := WakeupInstances(4); got.Int64() != 360 {
		t.Errorf("P(4) = %v, want 360", got)
	}
	// Equation 2's lower bound P >= n!·(n/2)^n.
	for _, n := range []int64{6, 10, 16, 24} {
		p := WakeupInstances(n)
		bound := new(big.Int).Exp(big.NewInt(n/2), big.NewInt(n), nil)
		bound.Mul(bound, Factorial(n))
		if p.Cmp(bound) < 0 {
			t.Errorf("n=%d: P < n!·(n/2)^n", n)
		}
	}
}

func TestOracleOutputsSmall(t *testing.T) {
	// q = 0: only the all-empty assignment. Q = 1.
	if got := OracleOutputs(0, 4); got.Int64() != 1 {
		t.Errorf("Q(0,4) = %v", got)
	}
	// q = 1, nodes = 2: q'=0 gives 1; q'=1 gives 2·C(2,1) = 4. Total 5.
	if got := OracleOutputs(1, 2); got.Int64() != 5 {
		t.Errorf("Q(1,2) = %v, want 5", got)
	}
	// Exhaustive check against the definition for a small grid.
	for q := int64(0); q <= 6; q++ {
		for nodes := int64(1); nodes <= 5; nodes++ {
			want := new(big.Int)
			for qp := int64(0); qp <= q; qp++ {
				term := new(big.Int).Lsh(big.NewInt(1), uint(qp))
				term.Mul(term, Binomial(qp+nodes-1, nodes-1))
				want.Add(want, term)
			}
			if got := OracleOutputs(q, nodes); got.Cmp(want) != 0 {
				t.Errorf("Q(%d,%d) = %v, want %v", q, nodes, got, want)
			}
		}
	}
}

func TestOracleOutputsUpperDominates(t *testing.T) {
	for q := int64(0); q <= 40; q += 5 {
		for nodes := int64(2); nodes <= 32; nodes *= 2 {
			if OracleOutputs(q, nodes).Cmp(OracleOutputsUpper(q, nodes)) > 0 {
				t.Errorf("Q(%d,%d) exceeds its closed-form upper bound", q, nodes)
			}
		}
	}
}

func TestClaim21(t *testing.T) {
	// The paper's Claim 2.1 holds for all a > A, b > B for some constants;
	// verify it across a concrete grid well above the thresholds.
	for a := int64(4); a <= 64; a *= 2 {
		for b := int64(4); b <= 64; b *= 2 {
			if !Claim21Holds(a, b) {
				t.Errorf("Claim 2.1 fails at a=%d b=%d", a, b)
			}
		}
	}
}

func TestStirlingSandwich(t *testing.T) {
	for _, n := range []int64{8, 32, 128, 1024} {
		if !StirlingSandwiched(n) {
			t.Errorf("Stirling sandwich fails at n=%d", n)
		}
	}
}

func TestWakeupForcedPositiveAndGrowing(t *testing.T) {
	// Theorem 2.2 is asymptotic: the forced message count is negative at
	// small n (the exact counting confirms it) and becomes Ω(n log n) once
	// n passes the crossover around 2^14 (for α = 1/4).
	small := WakeupForced(256, 0.25)
	if small.ForcedMsgs >= 0 {
		t.Errorf("n=256: exact forced = %v; expected negative below the asymptotic crossover", small.ForcedMsgs)
	}
	prevRatio := 0.0
	for _, e := range []uint{16, 20, 24, 30} {
		n := int64(1) << e
		b := WakeupForcedAnalytic(n, 0.25)
		if b.ForcedMsgs <= 0 {
			t.Errorf("n=2^%d: forced = %v, want > 0 past crossover", e, b.ForcedMsgs)
			continue
		}
		// Superlinear: the ratio to n must grow with n, and the ratio to
		// n·log2(n) must be increasing toward a positive constant.
		ratio := b.ForcedMsgs / (float64(n) * float64(e))
		if ratio <= prevRatio {
			t.Errorf("n=2^%d: forced/(n log n) = %v not increasing (prev %v)", e, ratio, prevRatio)
		}
		prevRatio = ratio
		if n >= 1<<20 && b.ForcedMsgs < float64(n) {
			t.Errorf("n=2^%d: forced %v below linear", e, b.ForcedMsgs)
		}
		// The bound never exceeds the paper's closed form in this range.
		if b.ForcedMsgs > b.ClosedForm {
			t.Errorf("n=2^%d: forced %v above the closed form %v", e, b.ForcedMsgs, b.ClosedForm)
		}
	}
}

func TestWakeupForcedShrinksWithAlpha(t *testing.T) {
	// More oracle bits mean a weaker forced bound.
	n := int64(256)
	prev := math.Inf(1)
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4} {
		b := WakeupForced(n, alpha)
		if b.ForcedMsgs >= prev {
			t.Errorf("alpha=%v: forced %v not decreasing (prev %v)", alpha, b.ForcedMsgs, prev)
		}
		prev = b.ForcedMsgs
	}
}

func TestAnalyticMatchesExactWakeup(t *testing.T) {
	for _, n := range []int64{32, 64, 128, 256} {
		for _, alpha := range []float64{0.1, 0.25, 0.4} {
			exact := WakeupForced(n, alpha)
			approx := WakeupForcedAnalytic(n, alpha)
			if math.Abs(exact.Log2P-approx.Log2P) > 0.01 {
				t.Errorf("n=%d α=%v: log2P exact %v vs analytic %v", n, alpha, exact.Log2P, approx.Log2P)
			}
			if math.Abs(exact.Log2Q-approx.Log2Q) > 0.01 {
				t.Errorf("n=%d α=%v: log2Q exact %v vs analytic %v", n, alpha, exact.Log2Q, approx.Log2Q)
			}
			if math.Abs(exact.ForcedMsgs-approx.ForcedMsgs) > 0.1 {
				t.Errorf("n=%d α=%v: forced exact %v vs analytic %v", n, alpha, exact.ForcedMsgs, approx.ForcedMsgs)
			}
		}
	}
}

func TestLog2HelpersMatchExact(t *testing.T) {
	for _, n := range []int64{1, 2, 5, 20, 100} {
		if got, want := Log2Factorial(n), Log2(Factorial(n)); math.Abs(got-want) > 1e-6 {
			t.Errorf("Log2Factorial(%d) = %v, want %v", n, got, want)
		}
	}
	for _, tc := range []struct{ n, k int64 }{{10, 3}, {50, 25}, {100, 1}} {
		got := Log2Binomial(tc.n, tc.k)
		want := Log2(Binomial(tc.n, tc.k))
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("Log2Binomial(%d,%d) = %v, want %v", tc.n, tc.k, got, want)
		}
	}
	for _, q := range []int64{5, 50, 200} {
		for _, nodes := range []int64{4, 16, 64} {
			got := Log2OracleOutputs(q, nodes)
			want := Log2(OracleOutputs(q, nodes))
			if math.Abs(got-want) > 0.01 {
				t.Errorf("Log2OracleOutputs(%d,%d) = %v, want %v", q, nodes, got, want)
			}
		}
	}
}

func TestBroadcastForced(t *testing.T) {
	// Claim 3.3's contradiction: with q = n/2k bits, the forced message
	// count must exceed the threshold n(k-1)/8 for large enough n with
	// k <= sqrt(log n). At n=1024 the exact count is still below the
	// (asymptotic) threshold; by n=2^16 it has crossed.
	small, err := BroadcastForced(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.ForcedMsgs <= 0 {
		t.Errorf("n=1024 k=4: forced %v, want positive", small.ForcedMsgs)
	}
	if small.ForcedMsgs > small.Threshold {
		t.Errorf("n=1024 k=4: forced %v already above threshold %v; crossover moved", small.ForcedMsgs, small.Threshold)
	}
	for _, e := range []uint{16, 20, 24} {
		n := int64(1) << e
		b, err := BroadcastForcedAnalytic(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		if b.ForcedMsgs <= b.Threshold {
			t.Errorf("n=2^%d k=4: forced %v <= threshold %v", e, b.ForcedMsgs, b.Threshold)
		}
	}
	if _, err := BroadcastForced(10, 4); err == nil {
		t.Error("4k∤n accepted")
	}
	if _, err := BroadcastForced(16, 2); err == nil {
		t.Error("k=2 accepted")
	}
}

func TestBroadcastAnalyticMatchesExact(t *testing.T) {
	for _, tc := range []struct{ n, k int64 }{{48, 4}, {96, 4}, {240, 5}} {
		exact, err := BroadcastForced(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := BroadcastForcedAnalytic(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.ForcedMsgs-approx.ForcedMsgs) > 0.1 {
			t.Errorf("n=%d k=%d: exact %v vs analytic %v", tc.n, tc.k, exact.ForcedMsgs, approx.ForcedMsgs)
		}
	}
}

func TestBroadcastForcedGrowsLinearly(t *testing.T) {
	// The forced bound at q = n/2k is ~ (n/4k)·log n: superlinear in n for
	// fixed k. Check growth along a sweep past the crossover.
	var prev float64
	for _, n := range []int64{1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		b, err := BroadcastForcedAnalytic(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		if b.ForcedMsgs <= prev {
			t.Errorf("n=%d: forced %v not growing", n, b.ForcedMsgs)
		}
		prev = b.ForcedMsgs
	}
}

func BenchmarkWakeupForcedExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WakeupForced(128, 0.25)
	}
}

func BenchmarkWakeupForcedAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WakeupForcedAnalytic(1<<20, 0.25)
	}
}

func TestOracleOutputsMatchesEnumeration(t *testing.T) {
	// Q counts distinct advice assignments: ordered tuples of `nodes`
	// binary strings with total length at most q. Enumerate them for
	// tiny parameters and compare with the formula.
	countAssignments := func(q, nodes int) int64 {
		// Count tuples recursively: choose a length and content for the
		// first string, recurse on the rest.
		var rec func(remaining, nodesLeft int) int64
		rec = func(remaining, nodesLeft int) int64 {
			if nodesLeft == 0 {
				return 1
			}
			var total int64
			for l := 0; l <= remaining; l++ {
				// 2^l contents for a string of length l.
				total += (int64(1) << uint(l)) * rec(remaining-l, nodesLeft-1)
			}
			return total
		}
		return rec(q, nodes)
	}
	for q := 0; q <= 6; q++ {
		for nodes := 1; nodes <= 4; nodes++ {
			want := countAssignments(q, nodes)
			got := OracleOutputs(int64(q), int64(nodes))
			if got.Int64() != want {
				t.Errorf("Q(%d,%d) = %v, enumeration says %d", q, nodes, got, want)
			}
		}
	}
}

func TestEquation1Inequality(t *testing.T) {
	// The paper's Equation 1: (a/b)^b <= C(a,b) for 1 <= b <= a.
	for a := int64(1); a <= 40; a++ {
		for b := int64(1); b <= a; b++ {
			lhs := math.Pow(float64(a)/float64(b), float64(b))
			rhs := Log2(Binomial(a, b))
			if math.Log2(lhs) > rhs+1e-9 {
				t.Errorf("Eq.1 fails at a=%d b=%d: (a/b)^b = %v > C(a,b)", a, b, lhs)
			}
		}
	}
}
