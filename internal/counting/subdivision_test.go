package counting

import (
	"math"
	"testing"
)

func TestSubdivisionMatchesWakeupAtC1(t *testing.T) {
	// With c = 1 the machinery specializes to Theorem 2.2's.
	for _, n := range []int64{1 << 16, 1 << 20} {
		for _, alpha := range []float64{0.125, 0.25} {
			sub, err := SubdivisionForcedAnalytic(n, 1, alpha)
			if err != nil {
				t.Fatal(err)
			}
			wk := WakeupForcedAnalytic(n, alpha)
			rel := math.Abs(sub.ForcedMsgs-wk.ForcedMsgs) / math.Max(math.Abs(wk.ForcedMsgs), 1)
			if rel > 1e-6 {
				t.Errorf("n=%d α=%v: subdivision %v vs wakeup %v", n, alpha, sub.ForcedMsgs, wk.ForcedMsgs)
			}
		}
	}
}

func TestSubdivisionRejectsBadParams(t *testing.T) {
	if _, err := SubdivisionForcedAnalytic(8, 0, 0.1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := SubdivisionForcedAnalytic(5, 3, 0.1); err == nil {
		t.Error("c·n > C(n,2) accepted")
	}
	if _, err := SubdivisionForcedAnalytic(1<<60, 4, 0.9); err == nil {
		t.Error("overflowing budget accepted")
	}
}

func TestCriticalAlphaRisesWithC(t *testing.T) {
	// The remark after Theorem 2.2: more subdivided edges push the oracle
	// threshold up. At fixed n the empirical critical coefficient must be
	// strictly increasing in c and below the asymptotic c/(c+1).
	n := int64(1 << 30)
	prev := 0.0
	for c := int64(1); c <= 4; c++ {
		alpha, err := CriticalAlpha(n, c)
		if err != nil {
			t.Fatal(err)
		}
		if alpha <= prev {
			t.Errorf("c=%d: critical α %v not above c=%d's %v", c, alpha, c-1, prev)
		}
		prev = alpha
	}
}

func TestCriticalAlphaApproachesThreshold(t *testing.T) {
	// For fixed c, the critical α climbs toward c/(c+1) as n grows.
	for _, c := range []int64{1, 2} {
		var prev float64
		for _, e := range []uint{20, 30, 40, 50} {
			alpha, err := CriticalAlpha(int64(1)<<e, c)
			if err != nil {
				t.Fatal(err)
			}
			if alpha <= prev {
				t.Errorf("c=%d n=2^%d: critical α %v not increasing (prev %v)", c, e, alpha, prev)
			}
			if alpha >= float64(c)/float64(c+1) {
				t.Errorf("c=%d n=2^%d: critical α %v at or above the asymptotic threshold", c, e, alpha)
			}
			prev = alpha
		}
	}
}

func TestLog2FallingStableAgainstExact(t *testing.T) {
	// The Stirling path must agree with exact big-int values where both
	// are computable.
	for _, tc := range []struct{ n, k int64 }{
		{200000000, 5}, {200000000, 1000}, {1 << 31, 1 << 10}, {1 << 31, 1 << 16},
	} {
		got := Log2FallingFactorial(tc.n, tc.k)
		want := Log2(FallingFactorial(tc.n, tc.k))
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("falling(%d,%d): stable %v vs exact %v", tc.n, tc.k, got, want)
		}
	}
}

func TestLog2FallingEdgeCases(t *testing.T) {
	if got := Log2FallingFactorial(1<<40, 0); got != 0 {
		t.Errorf("k=0: %v", got)
	}
	if !math.IsInf(Log2FallingFactorial(5, 9), -1) {
		t.Error("k>n not -Inf")
	}
	// k == n on the Stirling path equals log2(n!).
	n := int64(3e8)
	got := Log2FallingFactorial(n, n)
	want := Log2Factorial(n)
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("k=n: %v vs %v", got, want)
	}
}
