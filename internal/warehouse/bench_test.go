package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oraclesize/internal/campaign"
)

// benchUnits sizes the synthetic resume artifact. Large enough that the
// full-decode, streaming-scan and index-lookup costs separate cleanly.
const benchUnits = 5000

// benchRecord builds one synthetic task record.
func benchRecord(i int) campaign.Record {
	return campaign.Record{
		SpecHash:   "bench",
		Unit:       fmt.Sprintf("task/broadcast/flooding/path/n64/t0/u%05d", i),
		Kind:       "task",
		Seed:       int64(i) * 7919,
		Task:       "broadcast",
		Scheme:     "flooding",
		Family:     "path",
		N:          64,
		Nodes:      64,
		Edges:      63,
		AdviceBits: 6,
		Messages:   63,
		Rounds:     64,
		Complete:   true,
	}
}

// benchJSONL writes the synthetic artifact as flat JSONL and returns its
// path.
func benchJSONL(b *testing.B) string {
	b.Helper()
	recs := make([]campaign.Record, benchUnits)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	path := filepath.Join(b.TempDir(), "results.jsonl")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := campaign.EncodeRecords(f, recs); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchWarehouse builds the same artifact as a compacted warehouse.
func benchWarehouse(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	w, err := Open(dir, Options{CompactAt: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchUnits; i++ {
		if err := w.Deposit(i, []campaign.Record{benchRecord(i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Compact(); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkResumeWarehouseIndex is the indexed resume path: open the
// store (sidecars + empty WAL only) and take the done set. No record is
// decompressed or decoded.
func BenchmarkResumeWarehouseIndex(b *testing.B) {
	dir := benchWarehouse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		done := w.SeenUnits()
		if len(done) != benchUnits {
			b.Fatalf("done set holds %d units", len(done))
		}
		w.Close()
	}
}

// BenchmarkResumeScanDoneFile is the streaming JSONL fast path: one pass
// decoding only (spec_hash, unit) per line.
func BenchmarkResumeScanDoneFile(b *testing.B) {
	path := benchJSONL(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, _, _, err := campaign.ScanDoneFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(done) != benchUnits {
			b.Fatalf("done set holds %d units", len(done))
		}
	}
}

// BenchmarkResumeLoadDoneFile is the original full-decode resume path,
// kept as the baseline the two fast paths are measured against.
func BenchmarkResumeLoadDoneFile(b *testing.B) {
	path := benchJSONL(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, _, _, err := campaign.LoadDoneFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(done) != benchUnits {
			b.Fatalf("done set holds %d units", len(done))
		}
	}
}
