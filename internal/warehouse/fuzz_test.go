package warehouse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"oraclesize/internal/campaign"
)

// maxFuzzEntries bounds fuzzed unit counts so one input cannot build an
// absurd segment.
const maxFuzzEntries = 128

// fuzzEntries derives a deterministic entry list from raw fuzz bytes:
// every entry gets a distinct key and one-or-more valid record lines
// whose indexed fields (family, n, task, scheme, seed) are driven by the
// input so block summaries take many shapes.
func fuzzEntries(n int, raw []byte) []entry {
	at := func(i int) byte {
		if len(raw) == 0 {
			return 0
		}
		return raw[i%len(raw)]
	}
	entries := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		rec := campaign.Record{
			SpecHash: "fuzz",
			Unit:     fmt.Sprintf("task/u%04d", i),
			Kind:     "task",
			Seed:     int64(at(2*i)) - 64,
			Task:     fmt.Sprintf("t%d", at(i)%5),
			Scheme:   fmt.Sprintf("s%d", at(i+1)%3),
			Family:   fmt.Sprintf("f%d", at(i+2)%4),
			N:        int(at(3*i)) + 1,
			Complete: at(i)%2 == 0,
		}
		lines := make([][]byte, 0, int(at(i)%3)+1)
		for j := 0; j <= int(at(i)%3); j++ {
			rec.Trial = j
			line, err := json.Marshal(rec)
			if err != nil {
				panic(err)
			}
			lines = append(lines, line)
		}
		entries = append(entries, entry{index: int64(i), key: rec.Unit, lines: lines})
	}
	return entries
}

// FuzzSegmentRoundTrip fuzzes the segment writer and reader as a pair:
// any entry list written under any block size must load back exactly —
// sidecar unit lists intact, every block passing its checksum, decoded
// entries byte-identical — and every sparse block summary must admit the
// records inside it.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add(3, 128, []byte("seed"))
	f.Add(0, 1, []byte{})
	f.Add(1, 1<<20, []byte{0xff})
	f.Add(64, 1, []byte("abcdefgh"))
	f.Add(17, 300, []byte{1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, n, blockSize int, raw []byte) {
		if n < 0 {
			n = -n
		}
		n %= maxFuzzEntries
		if blockSize < 1 {
			blockSize = 1
		}
		if blockSize > 1<<20 {
			blockSize %= 1 << 20
		}
		entries := fuzzEntries(n, raw)

		dir := t.TempDir()
		idx, err := writeSegment(dir, "seg-000001", entries, blockSize)
		if err != nil {
			t.Fatalf("writeSegment: %v", err)
		}
		loaded, err := loadSegIndex(dir, "seg-000001")
		if err != nil {
			t.Fatalf("loadSegIndex: %v", err)
		}
		if loaded.Records != idx.Records || len(loaded.Blocks) != len(idx.Blocks) {
			t.Fatalf("sidecar mismatch: %d/%d records, %d/%d blocks",
				loaded.Records, idx.Records, len(loaded.Blocks), len(idx.Blocks))
		}
		if len(loaded.UnitKeys) != len(entries) {
			t.Fatalf("sidecar holds %d unit keys, want %d", len(loaded.UnitKeys), len(entries))
		}
		for i, e := range entries {
			if loaded.UnitKeys[i] != e.key || loaded.UnitIndexes[i] != e.index {
				t.Fatalf("unit %d: sidecar (%s,%d), want (%s,%d)",
					i, loaded.UnitKeys[i], loaded.UnitIndexes[i], e.key, e.index)
			}
		}

		seg, err := os.Open(segPath(dir, "seg-000001"))
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		if err := checkMagic(seg); err != nil {
			t.Fatal(err)
		}
		var got []entry
		for _, bi := range loaded.Blocks {
			blockEntries, err := readBlock(seg, bi)
			if err != nil {
				t.Fatalf("readBlock: %v", err)
			}
			// The sparse summary must admit every record it covers: a
			// query for that record's own fields cannot skip this block.
			n := 0
			for _, e := range blockEntries {
				for _, line := range e.lines {
					var rec campaign.Record
					if err := json.Unmarshal(line, &rec); err != nil {
						t.Fatalf("stored line not JSON: %v", err)
					}
					q := Query{
						Kind: rec.Kind, Task: rec.Task, Scheme: rec.Scheme,
						Family: rec.Family, N: rec.N, NSet: true,
						Seed: rec.Seed, SeedSet: true,
					}
					if !q.admitsBlock(bi) {
						t.Fatalf("block summary excludes its own record %s", rec.Unit)
					}
					n++
				}
			}
			if n != bi.Records {
				t.Fatalf("block holds %d records, sidecar says %d", n, bi.Records)
			}
			got = append(got, blockEntries...)
		}
		if len(got) != len(entries) {
			t.Fatalf("round trip lost entries: %d, want %d", len(got), len(entries))
		}
		for i, e := range entries {
			g := got[i]
			if g.index != e.index || g.key != e.key || len(g.lines) != len(e.lines) {
				t.Fatalf("entry %d differs: (%d,%s,%d lines) vs (%d,%s,%d lines)",
					i, g.index, g.key, len(g.lines), e.index, e.key, len(e.lines))
			}
			for j := range e.lines {
				if !bytes.Equal(g.lines[j], e.lines[j]) {
					t.Fatalf("entry %d line %d differs", i, j)
				}
			}
		}
	})
}
