package warehouse

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The write-ahead log is a sequence of CRC-framed entries:
//
//	[4B big-endian payload length][4B big-endian CRC-32 (IEEE) of payload][payload = entry]
//
// A deposit appends exactly one frame with a single write call. Replay
// reads frames until the file ends or a frame fails its length or
// checksum — everything after that point is a torn tail from a killed
// process and is truncated away, so an interrupted deposit never
// surfaces as a half-written unit.

const frameHeaderLen = 8

// maxFramePayload bounds one frame so a corrupt length prefix cannot
// trigger a giant allocation during replay.
const maxFramePayload = 1 << 28

// appendFrame encodes one entry as a WAL frame into buf.
func appendFrame(buf []byte, e entry) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = appendEntry(buf, e)
	payload := buf[start+frameHeaderLen:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// replayWAL reads every intact frame from the WAL at path. It returns
// the decoded entries and the byte length of the valid frame prefix;
// content past validLen is torn or corrupt and must be truncated before
// the file is appended to again. A missing file reads as empty.
func replayWAL(path string) (entries []entry, validLen int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("warehouse: opening wal: %w", err)
	}
	defer f.Close()
	var header [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return entries, validLen, nil // clean EOF or torn header
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:])
		if length == 0 || length > maxFramePayload {
			return entries, validLen, nil
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return entries, validLen, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, validLen, nil // corrupt frame
		}
		e, rest, err := decodeEntry(payload)
		if err != nil || len(rest) != 0 {
			return entries, validLen, nil
		}
		entries = append(entries, e)
		validLen += int64(frameHeaderLen) + int64(length)
	}
}

// walName renders the WAL filename for a sequence number.
func walName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// listWALs returns the (seq, path) of every WAL file in dir, in sequence
// order.
func listWALs(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, name := range names {
		base := filepath.Base(name)
		numPart := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".log")
		seq, err := strconv.Atoi(numPart)
		if err != nil {
			continue // not ours
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}
