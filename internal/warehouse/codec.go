package warehouse

import (
	"encoding/binary"
	"fmt"
)

// entry is the unit of storage: one deposited unit — its index in the
// spec's compiled unit list, its stable unit key, and its records as the
// exact JSON lines the campaign encoder produced (no trailing newline).
// Keeping the canonical encoding byte-for-byte is what makes export
// reproduce `campaign canon` output exactly: the warehouse never
// re-interprets a record it did not have to.
type entry struct {
	index int64
	key   string
	lines [][]byte
}

// records counts the entry's record lines.
func (e entry) records() int { return len(e.lines) }

// Decode limits: a corrupt length prefix must fail decoding instead of
// asking the allocator for the moon. Unit keys are short path-like
// strings; one record line is a single JSON object.
const (
	maxKeyLen  = 1 << 12
	maxLineLen = 1 << 24
	maxRecords = 1 << 20
)

// appendEntry appends the entry's binary encoding to buf:
//
//	uvarint(index) uvarint(len(key)) key uvarint(n) { uvarint(len(line)) line }*n
func appendEntry(buf []byte, e entry) []byte {
	buf = binary.AppendUvarint(buf, uint64(e.index))
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	buf = binary.AppendUvarint(buf, uint64(len(e.lines)))
	for _, line := range e.lines {
		buf = binary.AppendUvarint(buf, uint64(len(line)))
		buf = append(buf, line...)
	}
	return buf
}

// decodeEntry decodes one entry from the front of data and returns the
// remainder. The returned entry's key and lines are copies, safe to
// retain after the caller reuses data.
func decodeEntry(data []byte) (entry, []byte, error) {
	index, n := binary.Uvarint(data)
	if n <= 0 {
		return entry{}, nil, fmt.Errorf("warehouse: truncated entry index")
	}
	data = data[n:]
	keyLen, n := binary.Uvarint(data)
	if n <= 0 || keyLen > maxKeyLen || uint64(len(data)-n) < keyLen {
		return entry{}, nil, fmt.Errorf("warehouse: bad entry key length")
	}
	data = data[n:]
	key := string(data[:keyLen])
	data = data[keyLen:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > maxRecords {
		return entry{}, nil, fmt.Errorf("warehouse: bad entry record count")
	}
	data = data[n:]
	lines := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		lineLen, n := binary.Uvarint(data)
		if n <= 0 || lineLen > maxLineLen || uint64(len(data)-n) < lineLen {
			return entry{}, nil, fmt.Errorf("warehouse: bad entry line length")
		}
		data = data[n:]
		lines = append(lines, append([]byte(nil), data[:lineLen]...))
		data = data[lineLen:]
	}
	return entry{index: int64(index), key: key, lines: lines}, data, nil
}

// decodeEntries decodes a concatenation of entries (one decompressed
// segment block).
func decodeEntries(data []byte) ([]entry, error) {
	var entries []entry
	for len(data) > 0 {
		e, rest, err := decodeEntry(data)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
		data = rest
	}
	return entries, nil
}
