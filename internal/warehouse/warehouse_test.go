package warehouse

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"oraclesize/internal/campaign"
)

// deposit is one captured Deposit call: the unit index and records a
// campaign execution handed the store.
type deposit struct {
	index int
	recs  []campaign.Record
}

// captureStore records the deposit sequence of a campaign run so tests
// can replay the exact same deposits into warehouses under different
// configurations.
type captureStore struct {
	mu       sync.Mutex
	deposits []deposit
	flushed  int
	written  int
}

func (c *captureStore) Deposit(index int, recs []campaign.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushed++
	if len(recs) == 0 {
		return nil
	}
	c.deposits = append(c.deposits, deposit{index: index, recs: append([]campaign.Record(nil), recs...)})
	c.written += len(recs)
	return nil
}

func (c *captureStore) Flushed() int { return c.flushed }
func (c *captureStore) Written() int { return c.written }
func (c *captureStore) Deduped() int { return 0 }

// quickDeposits runs the built-in quick spec once and returns the
// deposit sequence plus the flat record list.
func quickDeposits(t testing.TB) ([]deposit, []campaign.Record) {
	t.Helper()
	spec := campaign.QuickSpec()
	var cap captureStore
	if _, err := campaign.Run(spec, &cap, campaign.RunOptions{Workers: 4}); err != nil {
		t.Fatalf("quick run: %v", err)
	}
	var recs []campaign.Record
	for _, d := range cap.deposits {
		recs = append(recs, d.recs...)
	}
	return cap.deposits, recs
}

// canonBytes renders records exactly as `campaign canon` would.
func canonBytes(t testing.TB, recs []campaign.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := campaign.EncodeRecords(&buf, campaign.Canonicalize(recs)); err != nil {
		t.Fatalf("encoding canon reference: %v", err)
	}
	return buf.Bytes()
}

// exportBytes runs Export into a buffer.
func exportBytes(t testing.TB, w *Warehouse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// mustOpen opens a warehouse or fails the test.
func mustOpen(t testing.TB, dir string, opts Options) *Warehouse {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return w
}

func depositAll(t testing.TB, w *Warehouse, deposits []deposit) {
	t.Helper()
	for _, d := range deposits {
		if err := w.Deposit(d.index, d.recs); err != nil {
			t.Fatalf("deposit %d (%s): %v", d.index, d.recs[0].Unit, err)
		}
	}
}

// TestExportMatchesCanon is the compatibility contract: export of a
// warehouse is byte-identical to `campaign canon` of the flat JSONL the
// same run would have produced — before compaction, after compaction,
// and after a reopen.
func TestExportMatchesCanon(t *testing.T) {
	deposits, recs := quickDeposits(t)
	want := canonBytes(t, recs)

	dir := t.TempDir()
	w := mustOpen(t, dir, Options{CompactAt: -1})
	depositAll(t, w, deposits)
	if got := exportBytes(t, w); !bytes.Equal(got, want) {
		t.Errorf("export from WAL differs from canon\ngot %d bytes, want %d", len(got), len(want))
	}

	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := exportBytes(t, w); !bytes.Equal(got, want) {
		t.Error("export after compaction differs from canon")
	}
	if s := w.Stats(); s.Segments == 0 || s.WALRecords != 0 || s.SegmentRecords != len(recs) {
		t.Errorf("stats after compact: %+v", s)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := mustOpen(t, dir, Options{})
	defer w2.Close()
	if got := exportBytes(t, w2); !bytes.Equal(got, want) {
		t.Error("export after reopen differs from canon")
	}
	if w2.Units() != len(deposits) {
		t.Errorf("reopen holds %d units, want %d", w2.Units(), len(deposits))
	}
}

// TestDepositIdempotence checks the merge contract: duplicate unit keys
// are dropped and counted, empty deposits only acknowledge resume.
func TestDepositIdempotence(t *testing.T) {
	deposits, recs := quickDeposits(t)
	w := mustOpen(t, t.TempDir(), Options{CompactAt: -1})
	defer w.Close()
	depositAll(t, w, deposits)

	// A hedge loser redelivers the same unit.
	if err := w.Deposit(deposits[0].index, deposits[0].recs); err != nil {
		t.Fatalf("duplicate deposit: %v", err)
	}
	if w.Deduped() != 1 {
		t.Errorf("Deduped = %d, want 1", w.Deduped())
	}
	if w.Written() != len(recs) {
		t.Errorf("Written = %d, want %d (duplicate must not count)", w.Written(), len(recs))
	}

	// A resume acknowledgment carries no records.
	before := w.Flushed()
	if err := w.Deposit(999, nil); err != nil {
		t.Fatalf("ack deposit: %v", err)
	}
	if w.Flushed() != before+1 {
		t.Errorf("Flushed = %d after ack, want %d", w.Flushed(), before+1)
	}
	if w.Units() != len(deposits) {
		t.Errorf("Units = %d, want %d", w.Units(), len(deposits))
	}
	if got := exportBytes(t, w); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after duplicate deposit differs from canon")
	}
}

// TestReopenResume checks the resume path: a half-filled warehouse
// reports exactly its unit keys via the index, duplicates replayed into
// it are dropped, and completing the missing units converges on the full
// canonical artifact.
func TestReopenResume(t *testing.T) {
	deposits, recs := quickDeposits(t)
	half := len(deposits) / 2
	dir := t.TempDir()

	w := mustOpen(t, dir, Options{CompactAt: -1})
	depositAll(t, w, deposits[:half])
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := mustOpen(t, dir, Options{})
	defer w2.Close()
	seen := w2.SeenUnits()
	if len(seen) != half {
		t.Fatalf("SeenUnits holds %d keys, want %d", len(seen), half)
	}
	for _, d := range deposits[:half] {
		if !seen[d.recs[0].Unit] {
			t.Errorf("unit %s missing from SeenUnits", d.recs[0].Unit)
		}
		if !w2.SeenIndex(d.index) {
			t.Errorf("unit index %d missing from the bitmap", d.index)
		}
	}
	for _, d := range deposits[half:] {
		if seen[d.recs[0].Unit] {
			t.Errorf("unit %s unexpectedly in SeenUnits", d.recs[0].Unit)
		}
		if w2.SeenIndex(d.index) {
			t.Errorf("unit index %d unexpectedly set", d.index)
		}
	}
	// Replay everything, as a resumed cluster run would: done units drop.
	depositAll(t, w2, deposits)
	if w2.Deduped() != half {
		t.Errorf("Deduped = %d, want %d", w2.Deduped(), half)
	}
	if got := exportBytes(t, w2); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after resume differs from canon")
	}
}

// TestBackgroundCompaction forces the WAL threshold low enough that
// rotation and background segment builds interleave with deposits, then
// checks nothing was lost or duplicated.
func TestBackgroundCompaction(t *testing.T) {
	deposits, recs := quickDeposits(t)
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{CompactAt: 1, BlockSize: 1 << 10})
	depositAll(t, w, deposits)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	w2 := mustOpen(t, dir, Options{})
	defer w2.Close()
	s := w2.Stats()
	if s.Segments == 0 {
		t.Fatalf("no segments committed under CompactAt=1: %+v", s)
	}
	if s.Units != len(deposits) || s.Records != len(recs) {
		t.Errorf("stats = %+v, want %d units / %d records", s, len(deposits), len(recs))
	}
	if got := exportBytes(t, w2); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after background compaction differs from canon")
	}
}

// TestSpecHashPin mirrors the JSONL refusing-to-resume check: a
// warehouse created for one spec refuses to open for another.
func TestSpecHashPin(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SpecHash: "aaaa"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SpecHash: "bbbb"}); err == nil || !strings.Contains(err.Error(), "refusing to open") {
		t.Errorf("foreign spec hash accepted: %v", err)
	}
	// Unpinned and matching opens both work.
	for _, hash := range []string{"", "aaaa"} {
		w, err := Open(dir, Options{SpecHash: hash})
		if err != nil {
			t.Fatalf("open with hash %q: %v", hash, err)
		}
		if got := w.SpecHash(); got != "aaaa" {
			t.Errorf("SpecHash = %q, want aaaa", got)
		}
		w.Close()
	}
}

// TestQueryFiltersAndPrunes checks that filtered queries return exactly
// the matching records in canonical order, and that the sparse index
// actually skips blocks it can rule out.
func TestQueryFiltersAndPrunes(t *testing.T) {
	deposits, recs := quickDeposits(t)
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{CompactAt: -1, BlockSize: 512})
	depositAll(t, w, deposits)
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen for clean index counters.
	w2 := mustOpen(t, dir, Options{})
	defer w2.Close()

	filters := []struct {
		name string
		q    Query
		keep func(campaign.Record) bool
	}{
		{"task", Query{Task: "wakeup"}, func(r campaign.Record) bool { return r.Task == "wakeup" }},
		{"family", Query{Family: "path"}, func(r campaign.Record) bool { return r.Family == "path" }},
		{"kind", Query{Kind: "experiment"}, func(r campaign.Record) bool { return r.Kind == "experiment" }},
		{"n", Query{N: 16, NSet: true}, func(r campaign.Record) bool { return r.N == 16 }},
	}
	for _, f := range filters {
		got, err := w2.QueryRecords(f.q)
		if err != nil {
			t.Fatalf("query %s: %v", f.name, err)
		}
		var want []campaign.Record
		for _, r := range recs {
			if f.keep(r) {
				want = append(want, r)
			}
		}
		want = campaign.Canonicalize(want)
		if len(got) != len(want) {
			t.Errorf("query %s matched %d records, want %d", f.name, len(got), len(want))
			continue
		}
		gb, wb := canonBytes(t, got), canonBytes(t, want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("query %s returned different records", f.name)
		}
	}

	s := w2.Stats()
	if s.IndexReads == 0 {
		t.Fatalf("queries decompressed no blocks: %+v", s)
	}
	if s.IndexSkips == 0 {
		t.Errorf("sparse index skipped no blocks across selective queries: %+v", s)
	}
	// A query for a task that does not exist should touch no block at all.
	before := w2.Stats()
	if got, err := w2.QueryRecords(Query{Task: "no-such-task"}); err != nil || len(got) != 0 {
		t.Fatalf("impossible query: %d records, err %v", len(got), err)
	}
	after := w2.Stats()
	if after.IndexReads != before.IndexReads {
		t.Errorf("impossible query decompressed %d blocks", after.IndexReads-before.IndexReads)
	}
	if after.IndexSkips == before.IndexSkips {
		t.Error("impossible query skipped no blocks")
	}
}

// TestFreshRunRefusal mirrors the CLI guard: an importing store keeps
// counting units across synthetic ordinal indexes that collide with
// existing ones — the key set, not the index, is the dedup authority.
func TestImportOrdinalAliasing(t *testing.T) {
	_, recs := quickDeposits(t)
	w := mustOpen(t, t.TempDir(), Options{CompactAt: -1})
	defer w.Close()
	// Two different units deposited under the same ordinal index, as an
	// import across files could produce.
	a := []campaign.Record{recs[0]}
	b := []campaign.Record{recs[len(recs)-1]}
	if a[0].Unit == b[0].Unit {
		t.Skip("quick spec produced identical first/last units")
	}
	if err := w.Deposit(0, a); err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit(0, b); err != nil {
		t.Fatal(err)
	}
	if w.Units() != 2 {
		t.Errorf("Units = %d, want 2 — index collision must not alias distinct keys", w.Units())
	}
	if w.Deduped() != 0 {
		t.Errorf("Deduped = %d, want 0", w.Deduped())
	}
}

// TestScanOrderDeterministic: two identical deposit histories produce
// identical Scan streams.
func TestScanOrderDeterministic(t *testing.T) {
	deposits, _ := quickDeposits(t)
	stream := func() string {
		w := mustOpen(t, t.TempDir(), Options{CompactAt: -1, BlockSize: 512})
		defer w.Close()
		depositAll(t, w, deposits)
		if err := w.Compact(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := w.Scan(func(r campaign.Record) error {
			fmt.Fprintf(&sb, "%s/%d\n", r.Unit, r.Row)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := stream(), stream(); a != b {
		t.Error("identical histories scanned in different orders")
	}
}
