package warehouse

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"

	"oraclesize/internal/campaign"
)

// Query is a conjunctive filter over the indexed record dimensions.
// Zero-valued fields match everything; NSet/SeedSet distinguish "any"
// from an explicit zero. Blocks whose sparse index proves no record can
// match are skipped without decompression.
type Query struct {
	Kind    string
	Task    string
	Scheme  string
	Family  string
	Unit    string
	N       int
	NSet    bool
	Seed    int64
	SeedSet bool
}

// matches reports whether one record satisfies the filter.
func (q Query) matches(r campaign.Record) bool {
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	if q.Task != "" && r.Task != q.Task {
		return false
	}
	if q.Scheme != "" && r.Scheme != q.Scheme {
		return false
	}
	if q.Family != "" && r.Family != q.Family {
		return false
	}
	if q.Unit != "" && r.Unit != q.Unit {
		return false
	}
	if q.NSet && r.N != q.N {
		return false
	}
	if q.SeedSet && r.Seed != q.Seed {
		return false
	}
	return true
}

// admitsBlock reports whether the block's sparse summary leaves room for
// a match; false means the whole block is skipped unread.
func (q Query) admitsBlock(b blockIndex) bool {
	if q.Kind != "" && len(b.Kinds) > 0 && !slices.Contains(b.Kinds, q.Kind) {
		return false
	}
	if q.Task != "" && len(b.Tasks) > 0 && !slices.Contains(b.Tasks, q.Task) {
		return false
	}
	if q.Scheme != "" && len(b.Schemes) > 0 && !slices.Contains(b.Schemes, q.Scheme) {
		return false
	}
	if q.Family != "" && len(b.Families) > 0 && !slices.Contains(b.Families, q.Family) {
		return false
	}
	if q.NSet && (q.N < b.MinN || q.N > b.MaxN) {
		return false
	}
	if q.SeedSet && (q.Seed < b.MinSeed || q.Seed > b.MaxSeed) {
		return false
	}
	return true
}

// zero is the match-everything query Scan uses.
var zeroQuery Query

// Scan streams every record in the store — committed segments in
// manifest order, then the uncompacted WAL tail — through fn. The
// per-store order is deterministic for a fixed segment layout but not
// canonical; callers that need canonical order (Export) sort.
func (w *Warehouse) Scan(fn func(campaign.Record) error) error {
	return w.Query(zeroQuery, fn)
}

// Query streams every record matching q through fn, pruning segment
// blocks via the sparse index and counting each decision in Stats
// (IndexSkips vs IndexReads).
func (w *Warehouse) Query(q Query, fn func(campaign.Record) error) error {
	w.mu.Lock()
	segs := append([]*segIndex(nil), w.segs...)
	// Entry slices are append-only and entries immutable once deposited,
	// so snapshotting the slice headers under the lock is enough.
	var tail [][]entry
	for _, fw := range w.frozen {
		tail = append(tail, fw.entries)
	}
	tail = append(tail, w.mem)
	w.mu.Unlock()

	for _, idx := range segs {
		if err := w.querySegment(idx, q, fn); err != nil {
			return err
		}
	}
	for _, entries := range tail {
		for _, e := range entries {
			if err := emitMatches(e, q, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// querySegment scans one segment, skipping blocks the index rules out.
func (w *Warehouse) querySegment(idx *segIndex, q Query, fn func(campaign.Record) error) error {
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, bi := range idx.Blocks {
		if !q.admitsBlock(bi) {
			w.idxSkips.Add(1)
			continue
		}
		w.idxReads.Add(1)
		if f == nil {
			var err error
			if f, err = os.Open(segPath(w.dir, idx.Name)); err != nil {
				return fmt.Errorf("warehouse: %w", err)
			}
			if err := checkMagic(f); err != nil {
				return err
			}
		}
		entries, err := readBlock(f, bi)
		if err != nil {
			return fmt.Errorf("warehouse: segment %s: %w", idx.Name, err)
		}
		for _, e := range entries {
			if err := emitMatches(e, q, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitMatches decodes an entry's lines and feeds the matching records to
// fn.
func emitMatches(e entry, q Query, fn func(campaign.Record) error) error {
	for _, line := range e.lines {
		var rec campaign.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("warehouse: unit %s holds a malformed record: %w", e.key, err)
		}
		if !q.matches(rec) {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Records returns every stored record.
func (w *Warehouse) Records() ([]campaign.Record, error) {
	var recs []campaign.Record
	err := w.Scan(func(r campaign.Record) error {
		recs = append(recs, r)
		return nil
	})
	return recs, err
}

// Export writes the store's full contents as canonical JSONL — timing
// stripped, records sorted by (unit key, row) — byte-identical to
// `campaign canon` over the flat JSONL artifact of the same run. This is
// the warehouse's compatibility contract with every existing tool.
func (w *Warehouse) Export(out io.Writer) error {
	recs, err := w.Records()
	if err != nil {
		return err
	}
	return campaign.EncodeRecords(out, campaign.Canonicalize(recs))
}

// QueryRecords collects the matches of q in canonical order — the
// deterministic form the query CLI prints, independent of segment
// layout and compaction history.
func (w *Warehouse) QueryRecords(q Query) ([]campaign.Record, error) {
	var recs []campaign.Record
	if err := w.Query(q, func(r campaign.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return campaign.Canonicalize(recs), nil
}
