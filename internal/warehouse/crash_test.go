package warehouse

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// activeWALPath is the first active WAL of a freshly created store —
// where a crash test's deposits land.
func activeWALPath(dir string) string {
	return filepath.Join(dir, walName(1))
}

// TestCrashMidDepositRecovery is the headline crash test: kill the
// process after a partial WAL write, reopen, and verify no unit was
// lost or duplicated and the export still matches canon.
func TestCrashMidDepositRecovery(t *testing.T) {
	deposits, recs := quickDeposits(t)
	dir := t.TempDir()

	w := mustOpen(t, dir, Options{CompactAt: -1})
	depositAll(t, w, deposits)
	// Abandon w without Close — the crash. Then tear the final frame as
	// an interrupted write(2) would: the WAL ends mid-payload.
	walPath := activeWALPath(dir)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	if w2.Units() != len(deposits)-1 {
		t.Fatalf("recovered %d units, want %d (torn final deposit dropped)", w2.Units(), len(deposits)-1)
	}
	seen := w2.SeenUnits()
	lastUnit := deposits[len(deposits)-1].recs[0].Unit
	if seen[lastUnit] {
		t.Errorf("torn unit %s survived replay", lastUnit)
	}
	// Resume: replay the full deposit sequence; done units drop, the torn
	// one lands again.
	depositAll(t, w2, deposits)
	if w2.Deduped() != len(deposits)-1 {
		t.Errorf("Deduped = %d, want %d", w2.Deduped(), len(deposits)-1)
	}
	if got := exportBytes(t, w2); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after crash recovery differs from canon")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// One more reopen proves the recovered store is stable.
	w3 := mustOpen(t, dir, Options{})
	defer w3.Close()
	if got := exportBytes(t, w3); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after second reopen differs from canon")
	}
}

// TestReplayStopsAtBadCRC corrupts one byte inside a frame's payload:
// replay must keep everything before the corrupt frame and drop it and
// everything after.
func TestReplayStopsAtBadCRC(t *testing.T) {
	var buf []byte
	var frameEnds []int
	for i := 0; i < 3; i++ {
		e := entry{index: int64(i), key: string(rune('a' + i)), lines: [][]byte{[]byte(`{"k":1}`)}}
		buf = appendFrame(buf, e)
		frameEnds = append(frameEnds, len(buf))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, walName(1))

	// Pristine log replays fully.
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, validLen, err := replayWAL(path)
	if err != nil || len(entries) != 3 || validLen != int64(frameEnds[2]) {
		t.Fatalf("pristine replay: %d entries, validLen %d, err %v", len(entries), validLen, err)
	}

	// Flip a payload byte in frame 2 (after its header).
	corrupt := append([]byte(nil), buf...)
	corrupt[frameEnds[0]+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, validLen, err = replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].key != "a" {
		t.Fatalf("replay past corrupt frame: %d entries", len(entries))
	}
	if validLen != int64(frameEnds[0]) {
		t.Errorf("validLen = %d, want %d", validLen, frameEnds[0])
	}

	// A torn header (fewer than 8 trailing bytes) is also tolerated.
	if err := os.WriteFile(path, buf[:frameEnds[1]+3], 0o644); err != nil {
		t.Fatal(err)
	}
	entries, validLen, err = replayWAL(path)
	if err != nil || len(entries) != 2 || validLen != int64(frameEnds[1]) {
		t.Fatalf("torn header replay: %d entries, validLen %d, err %v", len(entries), validLen, err)
	}
}

// TestStaleWALAfterCompaction exercises the crash window between a
// segment commit and the removal of the WALs it covers: a surviving
// stale log must replay as all-duplicates, be deleted, and never
// double-count records.
func TestStaleWALAfterCompaction(t *testing.T) {
	deposits, recs := quickDeposits(t)
	dir := t.TempDir()

	w := mustOpen(t, dir, Options{CompactAt: -1})
	depositAll(t, w, deposits)
	// Snapshot the WAL as it stood before compaction.
	stale, err := os.ReadFile(activeWALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the covered WAL, as if the crash hit before os.Remove.
	stalePath := filepath.Join(dir, walName(7))
	if err := os.WriteFile(stalePath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	defer w2.Close()
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Error("all-duplicate stale WAL survived reopen")
	}
	s := w2.Stats()
	if s.Units != len(deposits) || s.Records != len(recs) || s.WALRecords != 0 {
		t.Errorf("stats after stale-WAL reopen: %+v, want %d units / %d records", s, len(deposits), len(recs))
	}
	if got := exportBytes(t, w2); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export after stale-WAL reopen differs from canon")
	}
}

// TestCrashDuringSegmentWrite leaves temp files from an interrupted
// commitFile behind; opening must ignore them and the next compaction
// must still commit cleanly.
func TestCrashDuringSegmentWrite(t *testing.T) {
	deposits, recs := quickDeposits(t)
	dir := t.TempDir()
	// Junk a half-written segment pair, as a crash mid-commit leaves.
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.seg.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := mustOpen(t, dir, Options{CompactAt: -1})
	defer w.Close()
	depositAll(t, w, deposits)
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := exportBytes(t, w); !bytes.Equal(got, canonBytes(t, recs)) {
		t.Error("export differs from canon with stale temp files present")
	}
}
