package warehouse

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"oraclesize/internal/campaign"
)

// Segments are the immutable, block-compressed resting place of
// compacted deposits. A segment file is a short magic header followed by
// back-to-back DEFLATE streams ("blocks"), each holding a run of entries
// totalling about Options.BlockSize uncompressed bytes. All structure —
// block offsets, checksums, and the sparse per-block summaries queries
// prune with — lives in a JSON sidecar (<name>.idx) written before the
// segment is committed, so opening a warehouse touches only sidecars and
// the WAL, never a compressed block.

var segMagic = []byte("OSWHSG1\n")

// blockIndex is one block's entry in the sidecar: where it lives, how to
// check it, and a sparse summary of the records inside that lets a query
// skip the block without decompressing it.
type blockIndex struct {
	Offset  int64  `json:"offset"`
	CompLen int64  `json:"comp_len"`
	RawLen  int64  `json:"raw_len"`
	CRC     uint32 `json:"crc32"`
	Records int    `json:"records"`

	// Sparse index over (family, n, task, scheme, seed): distinct label
	// sets and min/max ranges of every record in the block.
	Kinds    []string `json:"kinds,omitempty"`
	Families []string `json:"families,omitempty"`
	Tasks    []string `json:"tasks,omitempty"`
	Schemes  []string `json:"schemes,omitempty"`
	MinN     int      `json:"min_n,omitempty"`
	MaxN     int      `json:"max_n,omitempty"`
	MinSeed  int64    `json:"min_seed"`
	MaxSeed  int64    `json:"max_seed"`
}

// segIndex is the sidecar: the block table plus the segment's unit
// bitmap — every (unit index, unit key) it holds — which is what makes
// resume a sidecar lookup instead of a record scan.
type segIndex struct {
	Name        string       `json:"name"`
	Records     int          `json:"records"`
	UnitIndexes []int64      `json:"unit_indexes"`
	UnitKeys    []string     `json:"unit_keys"`
	Blocks      []blockIndex `json:"blocks"`
}

func segPath(dir, name string) string { return filepath.Join(dir, name+".seg") }
func idxPath(dir, name string) string { return filepath.Join(dir, name+".idx") }

// stringSet accumulates a sorted distinct-label list.
type stringSet map[string]bool

func (s stringSet) sorted() []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// summarize folds one record into the block summary being built.
func (b *blockIndex) summarize(rec campaign.Record, kinds, families, tasks, schemes stringSet) {
	kinds[rec.Kind] = true
	if rec.Family != "" {
		families[rec.Family] = true
	}
	if rec.Task != "" {
		tasks[rec.Task] = true
	}
	if rec.Scheme != "" {
		schemes[rec.Scheme] = true
	}
	if b.Records == 0 {
		b.MinN, b.MaxN = rec.N, rec.N
		b.MinSeed, b.MaxSeed = rec.Seed, rec.Seed
	} else {
		b.MinN = min(b.MinN, rec.N)
		b.MaxN = max(b.MaxN, rec.N)
		b.MinSeed = min(b.MinSeed, rec.Seed)
		b.MaxSeed = max(b.MaxSeed, rec.Seed)
	}
	b.Records++
}

// writeSegment writes entries as a new immutable segment <name>.seg plus
// its sidecar <name>.idx in dir, fsyncing both and committing each via
// rename so a crash leaves either a complete pair or junk temp files,
// never a half-segment the manifest could point at. Entries are laid
// down in the given order; callers sort by unit index so the layout is
// deterministic for a given deposit set.
func writeSegment(dir, name string, entries []entry, blockSize int) (*segIndex, error) {
	idx := &segIndex{Name: name}
	var file bytes.Buffer
	file.Write(segMagic)

	var raw []byte
	var comp bytes.Buffer
	var blockEntries []entry
	flush := func() error {
		if len(raw) == 0 {
			return nil
		}
		comp.Reset()
		fw, err := flate.NewWriter(&comp, flate.DefaultCompression)
		if err != nil {
			return err
		}
		if _, err := fw.Write(raw); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		bi := blockIndex{
			Offset:  int64(file.Len()),
			CompLen: int64(comp.Len()),
			RawLen:  int64(len(raw)),
			CRC:     crc32.ChecksumIEEE(comp.Bytes()),
		}
		kinds, families, tasks, schemes := stringSet{}, stringSet{}, stringSet{}, stringSet{}
		for _, e := range blockEntries {
			for _, line := range e.lines {
				var rec campaign.Record
				if err := json.Unmarshal(line, &rec); err != nil {
					return fmt.Errorf("warehouse: record in unit %s is not valid JSON: %w", e.key, err)
				}
				bi.summarize(rec, kinds, families, tasks, schemes)
			}
		}
		bi.Kinds = kinds.sorted()
		bi.Families = families.sorted()
		bi.Tasks = tasks.sorted()
		bi.Schemes = schemes.sorted()
		idx.Blocks = append(idx.Blocks, bi)
		idx.Records += bi.Records
		file.Write(comp.Bytes())
		raw = raw[:0]
		blockEntries = blockEntries[:0]
		return nil
	}

	for _, e := range entries {
		idx.UnitIndexes = append(idx.UnitIndexes, e.index)
		idx.UnitKeys = append(idx.UnitKeys, e.key)
		raw = appendEntry(raw, e)
		blockEntries = append(blockEntries, e)
		if len(raw) >= blockSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	if err := commitFile(segPath(dir, name), file.Bytes()); err != nil {
		return nil, err
	}
	sidecar, err := json.Marshal(idx)
	if err != nil {
		return nil, fmt.Errorf("warehouse: encoding segment index: %w", err)
	}
	if err := commitFile(idxPath(dir, name), sidecar); err != nil {
		return nil, err
	}
	return idx, nil
}

// loadSegIndex reads a sidecar.
func loadSegIndex(dir, name string) (*segIndex, error) {
	data, err := os.ReadFile(idxPath(dir, name))
	if err != nil {
		return nil, fmt.Errorf("warehouse: reading segment index: %w", err)
	}
	var idx segIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("warehouse: segment index %s: %w", name, err)
	}
	if len(idx.UnitIndexes) != len(idx.UnitKeys) {
		return nil, fmt.Errorf("warehouse: segment index %s: %d unit indexes vs %d keys",
			name, len(idx.UnitIndexes), len(idx.UnitKeys))
	}
	return &idx, nil
}

// readBlock decompresses and decodes one block of a segment file already
// opened for reading, verifying its checksum.
func readBlock(f io.ReaderAt, bi blockIndex) ([]entry, error) {
	comp := make([]byte, bi.CompLen)
	if _, err := f.ReadAt(comp, bi.Offset); err != nil {
		return nil, fmt.Errorf("warehouse: reading block at %d: %w", bi.Offset, err)
	}
	if crc32.ChecksumIEEE(comp) != bi.CRC {
		return nil, fmt.Errorf("warehouse: block at %d fails its checksum", bi.Offset)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, 0, bi.RawLen)
	buf := bytes.NewBuffer(raw)
	if _, err := io.Copy(buf, fr); err != nil {
		return nil, fmt.Errorf("warehouse: decompressing block at %d: %w", bi.Offset, err)
	}
	if err := fr.Close(); err != nil {
		return nil, err
	}
	if int64(buf.Len()) != bi.RawLen {
		return nil, fmt.Errorf("warehouse: block at %d decompressed to %d bytes, want %d",
			bi.Offset, buf.Len(), bi.RawLen)
	}
	return decodeEntries(buf.Bytes())
}

// checkMagic verifies the segment header.
func checkMagic(f io.ReaderAt) error {
	head := make([]byte, len(segMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return fmt.Errorf("warehouse: reading segment header: %w", err)
	}
	if !bytes.Equal(head, segMagic) {
		return fmt.Errorf("warehouse: bad segment magic %q", head)
	}
	return nil
}

// commitFile writes data to path atomically: temp file in the same
// directory, fsync, rename.
func commitFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("warehouse: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("warehouse: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("warehouse: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("warehouse: committing %s: %w", path, err)
	}
	return nil
}
