// Package warehouse is an embedded, indexed, append-optimized store for
// campaign records — the results backend that makes million-unit sweeps
// practical where a flat JSONL artifact forces every resume, summary and
// canonicalization to re-read everything.
//
// The shape is a small LSM tree specialized for write-once campaign
// units:
//
//   - Deposits append CRC-framed entries to a write-ahead log; a killed
//     process loses at most the torn tail of its last frame, never a
//     half-written unit.
//   - When the active WAL passes a size threshold it is rotated out and a
//     background compactor folds the frozen logs into an immutable,
//     block-compressed segment (DEFLATE blocks of ~BlockSize raw bytes).
//   - Each segment carries a JSON sidecar: block offsets and checksums, a
//     sparse per-block index over (family, n, task, scheme, seed), and
//     the segment's unit bitmap — every unit index and key it holds.
//     Opening a warehouse reads only sidecars and replays the WAL, so
//     resume is a lookup against the unit index, not a scan of records.
//   - Deposits are idempotent by unit key: hedge losers, reassigned
//     leases and resume replays are dropped and counted, which is the
//     same merge contract campaign.Sink gives the cluster coordinator.
//
// The compatibility contract is byte-identity: Export writes exactly the
// canonical JSONL (`campaign canon`) of the records deposited, so a
// warehouse-backed run and a flat-JSONL run of the same spec compare
// equal with cmp.
package warehouse

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"oraclesize/internal/campaign"
)

// Options tune an open warehouse. The zero value is ready for use.
type Options struct {
	// SpecHash, when set, pins the store to one campaign spec: opening a
	// warehouse whose manifest carries a different hash fails, exactly
	// like resuming a JSONL artifact produced by a different spec.
	SpecHash string
	// CompactAt is the active-WAL byte size that triggers background
	// compaction (default 4 MiB; negative disables automatic compaction —
	// Compact still works).
	CompactAt int64
	// BlockSize is the uncompressed byte target per segment block
	// (default 256 KiB).
	BlockSize int
	// Sync fsyncs the WAL after every deposit. Off by default: a crash
	// may then lose the most recent deposits to the OS cache, but never
	// corrupts the store — replay stops at the first torn frame.
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.CompactAt == 0 {
		o.CompactAt = 4 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 256 << 10
	}
	return o
}

// manifest is the committed segment list, updated atomically on every
// compaction.
type manifest struct {
	Version  int      `json:"version"`
	SpecHash string   `json:"spec_hash,omitempty"`
	Segments []string `json:"segments"`
	NextSeq  int      `json:"next_seq"`
}

const manifestName = "MANIFEST.json"

// frozenWAL is a rotated log awaiting compaction: its live (non-dup)
// entries and the file to delete once a committed segment covers them.
type frozenWAL struct {
	seq     int
	path    string
	bytes   int64
	entries []entry
}

// Stats is a point-in-time snapshot of the store's shape and counters.
type Stats struct {
	// Units and Records cover everything the store holds, segments and
	// WAL together.
	Units   int
	Records int
	// Segments is the committed segment count; SegmentRecords how many
	// records rest in them.
	Segments       int
	SegmentRecords int
	// WALRecords and WALBytes cover the not-yet-compacted tail (active
	// plus frozen logs).
	WALRecords int
	WALBytes   int64
	// Compactions counts segment commits over the store's open lifetime.
	Compactions int64
	// IndexSkips and IndexReads count query block decisions: skipped via
	// the sparse index vs decompressed. The hit rate is
	// IndexSkips/(IndexSkips+IndexReads).
	IndexSkips int64
	IndexReads int64
}

// Warehouse is an open store. It implements campaign.Store, so campaign
// executions and the cluster coordinator deposit into it exactly as they
// would into a JSONL Sink. All methods are safe for concurrent use.
type Warehouse struct {
	dir  string
	opts Options

	idxSkips atomic.Int64
	idxReads atomic.Int64

	mu       sync.Mutex
	man      manifest
	segs     []*segIndex
	wal      *os.File
	walSeq   int
	walBytes int64
	walBuf   []byte
	mem      []entry
	frozen   []frozenWAL
	seenKeys map[string]bool
	seenIdx  bitset
	segRecs  int
	memRecs  int // records in mem + frozen

	flushed, written, deduped int
	compactions               int64

	compacting bool
	compactErr error
	closed     bool
	wg         sync.WaitGroup
	compactMu  sync.Mutex // serializes segment writes
}

var _ campaign.Store = (*Warehouse)(nil)

// Open opens (or creates) the warehouse in dir: the manifest and every
// segment sidecar are loaded, surviving WALs are replayed with
// duplicates from interrupted compactions dropped, and a fresh active
// WAL is started. Blocks are never decompressed on open.
func Open(dir string, opts Options) (*Warehouse, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	w := &Warehouse{
		dir:      dir,
		opts:     opts,
		man:      manifest{Version: 1, NextSeq: 1},
		seenKeys: make(map[string]bool),
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("warehouse: reading manifest: %w", err)
	default:
		if err := json.Unmarshal(data, &w.man); err != nil {
			return nil, fmt.Errorf("warehouse: manifest: %w", err)
		}
	}
	if opts.SpecHash != "" && w.man.SpecHash != "" && opts.SpecHash != w.man.SpecHash {
		return nil, fmt.Errorf("warehouse: %s holds spec %s, not %s — refusing to open",
			dir, w.man.SpecHash, opts.SpecHash)
	}
	if opts.SpecHash != "" && w.man.SpecHash == "" {
		w.man.SpecHash = opts.SpecHash
		if err := w.commitManifest(w.man); err != nil {
			return nil, err
		}
	}
	for _, name := range w.man.Segments {
		idx, err := loadSegIndex(dir, name)
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, idx)
		w.segRecs += idx.Records
		for i, unitIdx := range idx.UnitIndexes {
			w.seenKeys[idx.UnitKeys[i]] = true
			w.seenIdx.set(unitIdx)
		}
	}
	// Replay surviving logs. Any log is frozen — we never append to an
	// old WAL — and logs whose every entry already rests in a segment
	// (the crash window between manifest commit and WAL removal) are
	// deleted on the spot.
	seqs, err := listWALs(dir)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	maxSeq := 0
	for _, seq := range seqs {
		path := filepath.Join(dir, walName(seq))
		entries, validLen, err := replayWAL(path)
		if err != nil {
			return nil, err
		}
		live := entries[:0]
		for _, e := range entries {
			if w.seenKeys[e.key] {
				continue // already compacted before the crash
			}
			w.seenKeys[e.key] = true
			w.seenIdx.set(e.index)
			w.memRecs += e.records()
			live = append(live, e)
		}
		if len(live) == 0 {
			os.Remove(path)
			continue
		}
		w.frozen = append(w.frozen, frozenWAL{seq: seq, path: path, bytes: validLen, entries: live})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	w.walSeq = maxSeq + 1
	if err := w.openActiveWAL(); err != nil {
		return nil, err
	}
	return w, nil
}

// openActiveWAL starts a fresh log at the current sequence number.
func (w *Warehouse) openActiveWAL() error {
	f, err := os.OpenFile(filepath.Join(w.dir, walName(w.walSeq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("warehouse: opening wal: %w", err)
	}
	w.wal = f
	w.walBytes = 0
	return nil
}

// commitManifest writes the manifest atomically.
func (w *Warehouse) commitManifest(man manifest) error {
	data, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("warehouse: encoding manifest: %w", err)
	}
	return commitFile(filepath.Join(w.dir, manifestName), data)
}

// SpecHash returns the spec hash the store is pinned to ("" while empty
// and unpinned).
func (w *Warehouse) SpecHash() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.SpecHash
}

// Deposit implements campaign.Store: the unit's records are encoded as
// one WAL frame and the unit key becomes visible to SeenUnits
// immediately. A deposit for a unit key the store already holds is
// dropped and counted — the idempotent-merge contract hedged and
// resumed runs rely on. nil records acknowledge a unit satisfied on
// resume without writing anything.
func (w *Warehouse) Deposit(index int, recs []campaign.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("warehouse: deposit after Close")
	}
	if err := w.compactErr; err != nil {
		return err
	}
	if len(recs) == 0 {
		w.flushed++
		return nil
	}
	key := recs[0].Unit
	if w.seenKeys[key] {
		w.deduped++
		return nil
	}
	e := entry{index: int64(index), key: key, lines: make([][]byte, 0, len(recs))}
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("warehouse: encoding record %s: %w", rec.Unit, err)
		}
		e.lines = append(e.lines, line)
	}
	w.walBuf = appendFrame(w.walBuf[:0], e)
	if _, err := w.wal.Write(w.walBuf); err != nil {
		return fmt.Errorf("warehouse: appending to wal: %w", err)
	}
	if w.opts.Sync {
		if err := w.wal.Sync(); err != nil {
			return fmt.Errorf("warehouse: syncing wal: %w", err)
		}
	}
	w.walBytes += int64(len(w.walBuf))
	w.mem = append(w.mem, e)
	w.memRecs += len(recs)
	w.seenKeys[key] = true
	w.seenIdx.set(int64(index))
	w.flushed++
	w.written += len(recs)
	if w.opts.CompactAt > 0 && w.walBytes >= w.opts.CompactAt && !w.compacting {
		if err := w.rotateLocked(); err != nil {
			return err
		}
		w.compacting = true
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.drainFrozen()
		}()
	}
	return nil
}

// rotateLocked freezes the active WAL and starts a new one. Callers hold
// w.mu.
func (w *Warehouse) rotateLocked() error {
	if len(w.mem) == 0 {
		return nil
	}
	if err := w.wal.Sync(); err != nil {
		return fmt.Errorf("warehouse: syncing wal: %w", err)
	}
	if err := w.wal.Close(); err != nil {
		return fmt.Errorf("warehouse: closing wal: %w", err)
	}
	w.frozen = append(w.frozen, frozenWAL{
		seq:     w.walSeq,
		path:    filepath.Join(w.dir, walName(w.walSeq)),
		bytes:   w.walBytes,
		entries: w.mem,
	})
	w.mem = nil
	w.walSeq++
	return w.openActiveWAL()
}

// drainFrozen folds every frozen WAL into one committed segment. It runs
// in the background compactor goroutine and inline under Compact; the
// compactMu serializes segment writes, and w.mu is never held across
// compression or disk IO, so deposits proceed while a segment builds.
func (w *Warehouse) drainFrozen() error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	defer func() {
		w.mu.Lock()
		w.compacting = false
		w.mu.Unlock()
	}()
	for {
		w.mu.Lock()
		if w.compactErr != nil {
			err := w.compactErr
			w.mu.Unlock()
			return err
		}
		frozen := append([]frozenWAL(nil), w.frozen...)
		man := w.man
		w.mu.Unlock()
		if len(frozen) == 0 {
			return nil
		}
		var entries []entry
		for _, fw := range frozen {
			entries = append(entries, fw.entries...)
		}
		// Deterministic layout: segment order is unit order, whatever
		// order deposits arrived in.
		sortEntries(entries)
		name := fmt.Sprintf("seg-%06d", man.NextSeq)
		idx, err := writeSegment(w.dir, name, entries, w.opts.BlockSize)
		if err != nil {
			w.fail(err)
			return err
		}
		next := man
		next.Segments = append(append([]string(nil), man.Segments...), name)
		next.NextSeq++
		if err := w.commitManifest(next); err != nil {
			w.fail(err)
			return err
		}
		w.mu.Lock()
		w.man = next
		w.segs = append(w.segs, idx)
		w.segRecs += idx.Records
		w.memRecs -= idx.Records
		w.frozen = w.frozen[len(frozen):]
		w.compactions++
		w.mu.Unlock()
		// The segment is durable; the logs it covers can go. A crash
		// before this point only means replay re-drops their entries.
		for _, fw := range frozen {
			os.Remove(fw.path)
		}
	}
}

// fail latches a background compaction error; the next Deposit, Compact
// or Close surfaces it.
func (w *Warehouse) fail(err error) {
	w.mu.Lock()
	if w.compactErr == nil {
		w.compactErr = err
	}
	w.mu.Unlock()
}

// Compact synchronously folds everything pending — the active memtable
// and any frozen logs — into a committed segment. A store with nothing
// pending is a no-op.
func (w *Warehouse) Compact() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("warehouse: compact after Close")
	}
	if err := w.rotateLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return w.drainFrozen()
}

// Close waits for background compaction and closes the active WAL. It
// does not force a final compaction: anything still in the WAL replays
// on the next Open.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.wal != nil {
		if serr := w.wal.Sync(); serr != nil {
			err = serr
		}
		if cerr := w.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.wal = nil
	}
	if w.compactErr != nil {
		return w.compactErr
	}
	return err
}

// Flushed implements campaign.Store.
func (w *Warehouse) Flushed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// Written implements campaign.Store.
func (w *Warehouse) Written() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Deduped implements campaign.Store.
func (w *Warehouse) Deduped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.deduped
}

// SeenUnits returns the set of unit keys the store holds — the resume
// fast path. It is served entirely from the in-memory unit index built
// off segment sidecars and WAL replay; no record is ever decoded.
func (w *Warehouse) SeenUnits() map[string]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]bool, len(w.seenKeys))
	for k := range w.seenKeys {
		out[k] = true
	}
	return out
}

// SeenIndex reports whether a unit index has been deposited — the
// bitmap-backed point lookup. Unit indexes are stable within one spec;
// the key set (SeenUnits) is the authority across imports.
func (w *Warehouse) SeenIndex(index int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seenIdx.get(int64(index))
}

// Units reports how many distinct units the store holds.
func (w *Warehouse) Units() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.seenKeys)
}

// Stats snapshots the store.
func (w *Warehouse) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	walBytes := w.walBytes
	for _, fw := range w.frozen {
		walBytes += fw.bytes
	}
	return Stats{
		Units:          len(w.seenKeys),
		Records:        w.segRecs + w.memRecs,
		Segments:       len(w.segs),
		SegmentRecords: w.segRecs,
		WALRecords:     w.memRecs,
		WALBytes:       walBytes,
		Compactions:    w.compactions,
		IndexSkips:     w.idxSkips.Load(),
		IndexReads:     w.idxReads.Load(),
	}
}

// bitset is the unit-index bitmap: one bit per unit index in the spec's
// compiled list, grown on demand.
type bitset []uint64

func (b *bitset) set(i int64) {
	if i < 0 {
		return
	}
	word := int(i >> 6)
	for len(*b) <= word {
		*b = append(*b, 0)
	}
	(*b)[word] |= 1 << (uint(i) & 63)
}

func (b bitset) get(i int64) bool {
	if i < 0 {
		return false
	}
	word := int(i >> 6)
	if word >= len(b) {
		return false
	}
	return b[word]&(1<<(uint(i)&63)) != 0
}

// sortEntries orders by unit index, breaking ties by key so imports with
// synthetic indexes stay deterministic.
func sortEntries(entries []entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].index != entries[j].index {
			return entries[i].index < entries[j].index
		}
		return entries[i].key < entries[j].key
	})
}
