// Package edgediscovery implements the auxiliary problem behind both of the
// paper's lower bounds (Lemma 2.1).
//
// An instance (n, X, Y) hides a tuple X of labeled "special" edges of the
// complete graph K*_n; Y is a set of edges promised not to be special. A
// communication scheme knows n, |X| and Y and probes edges one at a time;
// probing edge e reveals whether e is special, and its label if so. The
// scheme is done when it has located every special edge together with its
// label.
//
// Lemma 2.1: against the adversary implemented here, any scheme restricted
// to an instance family I (same n, |X|, Y) needs at least log2(|I| / |X|!)
// probes in the worst case. The adversary maintains the set of still-active
// instances, answers each probe so as to keep at least half of them
// (choosing the majority side), and when forced to reveal a label picks the
// most popular one, keeping at least a 1/(2(|X|-r)) fraction.
package edgediscovery

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"oraclesize/internal/graphgen"
)

// Instance is one edge-discovery instance over K*_n: X lists the special
// edges in label order (X[i] has label i+1), and Y lists edges promised
// non-special.
type Instance struct {
	N int
	X []graphgen.LabelEdge
	Y []graphgen.LabelEdge
}

// Validate checks structural sanity: X edges distinct and within K*_n, and
// disjoint from Y.
func (in Instance) Validate() error {
	seen := make(map[graphgen.LabelEdge]bool, len(in.X)+len(in.Y))
	for i, e := range in.X {
		e = e.Canon()
		if e.U < 1 || e.V > in.N || e.U == e.V {
			return fmt.Errorf("edgediscovery: X[%d] = %v not an edge of K_%d", i, e, in.N)
		}
		if seen[e] {
			return fmt.Errorf("edgediscovery: duplicate special edge %v", e)
		}
		seen[e] = true
	}
	for i, e := range in.Y {
		e = e.Canon()
		if seen[e] {
			return fmt.Errorf("edgediscovery: Y[%d] = %v intersects X", i, e)
		}
		seen[e] = true
	}
	return nil
}

// specialLabel returns the 1-based label of e in X, or 0.
func (in Instance) specialLabel(e graphgen.LabelEdge) int {
	e = e.Canon()
	for i, x := range in.X {
		if x.Canon() == e {
			return i + 1
		}
	}
	return 0
}

// Probe is the outcome of testing one edge.
type Probe struct {
	Edge    graphgen.LabelEdge
	Special bool
	// Label is the special edge's label (1-based); 0 when not special.
	Label int
}

// History is everything a scheme knows: the public inputs plus the probes
// made so far.
type History struct {
	N      int
	XSize  int
	Y      []graphgen.LabelEdge
	Probes []Probe
}

// Found reports how many special edges have been revealed.
func (h *History) Found() int {
	count := 0
	for _, p := range h.Probes {
		if p.Special {
			count++
		}
	}
	return count
}

// Probed reports whether e has already been probed.
func (h *History) Probed(e graphgen.LabelEdge) bool {
	e = e.Canon()
	for _, p := range h.Probes {
		if p.Edge.Canon() == e {
			return true
		}
	}
	return false
}

// Scheme is a deterministic edge-discovery strategy: given the history it
// names the next edge to probe. Returning ok=false abandons the game (a
// scheme must never abandon before finding all |X| specials, or it loses).
type Scheme interface {
	Name() string
	Next(h *History) (graphgen.LabelEdge, bool)
}

// Play runs a scheme against a fixed instance and returns the number of
// probes used to find all specials.
func Play(in Instance, s Scheme, maxProbes int) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	h := &History{N: in.N, XSize: len(in.X), Y: append([]graphgen.LabelEdge(nil), in.Y...)}
	for h.Found() < len(in.X) {
		if len(h.Probes) >= maxProbes {
			return len(h.Probes), fmt.Errorf("edgediscovery: scheme %q exceeded %d probes", s.Name(), maxProbes)
		}
		e, ok := s.Next(h)
		if !ok {
			return len(h.Probes), fmt.Errorf("edgediscovery: scheme %q abandoned after %d probes", s.Name(), len(h.Probes))
		}
		label := in.specialLabel(e)
		h.Probes = append(h.Probes, Probe{Edge: e.Canon(), Special: label > 0, Label: label})
	}
	return len(h.Probes), nil
}

// Family enumerates all instances with the given n, |X| = k and Y: every
// ordered tuple of k distinct non-Y edges. Its size is the falling
// factorial (E-|Y|)·(E-|Y|-1)···(E-|Y|-k+1) with E = C(n,2).
func Family(n, k int, y []graphgen.LabelEdge) ([]Instance, error) {
	banned := make(map[graphgen.LabelEdge]bool, len(y))
	for _, e := range y {
		banned[e.Canon()] = true
	}
	var pool []graphgen.LabelEdge
	for _, e := range graphgen.AllCompleteEdges(n) {
		if !banned[e] {
			pool = append(pool, e)
		}
	}
	if k > len(pool) {
		return nil, fmt.Errorf("edgediscovery: cannot hide %d edges among %d candidates", k, len(pool))
	}
	var out []Instance
	tuple := make([]graphgen.LabelEdge, 0, k)
	used := make([]bool, len(pool))
	var rec func()
	rec = func() {
		if len(tuple) == k {
			out = append(out, Instance{
				N: n,
				X: append([]graphgen.LabelEdge(nil), tuple...),
				Y: append([]graphgen.LabelEdge(nil), y...),
			})
			return
		}
		for i, e := range pool {
			if used[i] {
				continue
			}
			used[i] = true
			tuple = append(tuple, e)
			rec()
			tuple = tuple[:len(tuple)-1]
			used[i] = false
		}
	}
	rec()
	return out, nil
}

// LowerBound is Lemma 2.1's bound: log2(|I| / |X|!) probes.
func LowerBound(familySize, xSize int) float64 {
	logFact := 0.0
	for i := 2; i <= xSize; i++ {
		logFact += math.Log2(float64(i))
	}
	return math.Log2(float64(familySize)) - logFact
}

// Adversary plays the Lemma 2.1 strategy over an explicit instance family.
type Adversary struct {
	active []Instance
	xSize  int
}

// NewAdversary starts an adversary over the family. All instances must
// share n, |X| and Y; the first instance is taken as the reference.
func NewAdversary(family []Instance) (*Adversary, error) {
	if len(family) == 0 {
		return nil, errors.New("edgediscovery: empty family")
	}
	ref := family[0]
	for i, in := range family {
		if in.N != ref.N || len(in.X) != len(ref.X) || len(in.Y) != len(ref.Y) {
			return nil, fmt.Errorf("edgediscovery: instance %d has different public inputs", i)
		}
	}
	return &Adversary{active: append([]Instance(nil), family...), xSize: len(ref.X)}, nil
}

// ActiveCount reports the number of still-active instances.
func (a *Adversary) ActiveCount() int { return len(a.active) }

// Answer processes a probe of e: it partitions the active set, commits to
// the majority side, picks the most popular label when the edge becomes
// special, and returns the revealed outcome.
func (a *Adversary) Answer(e graphgen.LabelEdge) Probe {
	e = e.Canon()
	var special, regular []Instance
	for _, in := range a.active {
		if in.specialLabel(e) > 0 {
			special = append(special, in)
		} else {
			regular = append(regular, in)
		}
	}
	if len(special) < len(regular) {
		a.active = regular
		return Probe{Edge: e, Special: false}
	}
	// Reveal the most popular label l0 (paper: |J^(l0)| >= |J|/(2(|X|-r))).
	byLabel := make(map[int][]Instance)
	for _, in := range special {
		byLabel[in.specialLabel(e)] = append(byLabel[in.specialLabel(e)], in)
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels) // deterministic tie-break: smallest popular label
	best := labels[0]
	for _, l := range labels {
		if len(byLabel[l]) > len(byLabel[best]) {
			best = l
		}
	}
	a.active = byLabel[best]
	return Probe{Edge: e, Special: true, Label: best}
}

// PlayAdversary runs a scheme against the adversary until the scheme has
// revealed all specials (at which point all active instances agree on X) or
// gives up. It returns the number of probes.
func PlayAdversary(family []Instance, s Scheme, maxProbes int) (int, error) {
	adv, err := NewAdversary(family)
	if err != nil {
		return 0, err
	}
	ref := family[0]
	h := &History{N: ref.N, XSize: len(ref.X), Y: append([]graphgen.LabelEdge(nil), ref.Y...)}
	for h.Found() < len(ref.X) {
		if len(h.Probes) >= maxProbes {
			return len(h.Probes), fmt.Errorf("edgediscovery: scheme %q exceeded %d probes against adversary", s.Name(), maxProbes)
		}
		e, ok := s.Next(h)
		if !ok {
			return len(h.Probes), fmt.Errorf("edgediscovery: scheme %q abandoned against adversary", s.Name())
		}
		h.Probes = append(h.Probes, adv.Answer(e))
	}
	return len(h.Probes), nil
}

// SweepScheme probes the unprobed edges of K*_n in lexicographic order.
type SweepScheme struct{}

// Name implements Scheme.
func (SweepScheme) Name() string { return "sweep" }

// Next implements Scheme.
func (SweepScheme) Next(h *History) (graphgen.LabelEdge, bool) {
	banned := probedOrKnown(h)
	for _, e := range graphgen.AllCompleteEdges(h.N) {
		if !banned[e] {
			return e, true
		}
	}
	return graphgen.LabelEdge{}, false
}

// RandomScheme probes unprobed edges in a seeded random order, fixed per
// game.
type RandomScheme struct {
	Seed int64

	order []graphgen.LabelEdge
}

// Name implements Scheme.
func (s *RandomScheme) Name() string { return "random" }

// Next implements Scheme.
func (s *RandomScheme) Next(h *History) (graphgen.LabelEdge, bool) {
	if s.order == nil {
		s.order = graphgen.AllCompleteEdges(h.N)
		rng := rand.New(rand.NewSource(s.Seed))
		rng.Shuffle(len(s.order), func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
	}
	banned := probedOrKnown(h)
	for _, e := range s.order {
		if !banned[e] {
			return e, true
		}
	}
	return graphgen.LabelEdge{}, false
}

// probedOrKnown marks edges that are pointless to probe: already probed or
// promised non-special.
func probedOrKnown(h *History) map[graphgen.LabelEdge]bool {
	banned := make(map[graphgen.LabelEdge]bool, len(h.Probes)+len(h.Y))
	for _, p := range h.Probes {
		banned[p.Edge.Canon()] = true
	}
	for _, e := range h.Y {
		banned[e.Canon()] = true
	}
	return banned
}

// GreedySplitScheme simulates the (deterministic) adversary against itself:
// it tracks the instances consistent with the history and probes the edge
// whose answer splits them most evenly — an information-theoretically
// greedy strategy that comes close to the Lemma 2.1 bound.
type GreedySplitScheme struct {
	Family []Instance

	consistent []Instance
}

// Name implements Scheme.
func (s *GreedySplitScheme) Name() string { return "greedy-split" }

// Next implements Scheme.
func (s *GreedySplitScheme) Next(h *History) (graphgen.LabelEdge, bool) {
	if s.consistent == nil {
		s.consistent = append([]Instance(nil), s.Family...)
	}
	// Refilter against the last probe (incremental).
	if len(h.Probes) > 0 {
		last := h.Probes[len(h.Probes)-1]
		var keep []Instance
		for _, in := range s.consistent {
			if in.specialLabel(last.Edge) == last.Label {
				keep = append(keep, in)
			}
		}
		s.consistent = keep
	}
	if len(s.consistent) == 0 {
		return graphgen.LabelEdge{}, false
	}
	banned := probedOrKnown(h)
	var best graphgen.LabelEdge
	bestWorst := -1
	for _, e := range graphgen.AllCompleteEdges(h.N) {
		if banned[e] {
			continue
		}
		specials := 0
		for _, in := range s.consistent {
			if in.specialLabel(e) > 0 {
				specials++
			}
		}
		worst := specials
		if len(s.consistent)-specials > worst {
			worst = len(s.consistent) - specials
		}
		if bestWorst < 0 || worst < bestWorst {
			best, bestWorst = e, worst
		}
	}
	if bestWorst < 0 {
		return graphgen.LabelEdge{}, false
	}
	return best, true
}
