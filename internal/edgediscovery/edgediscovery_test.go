package edgediscovery

import (
	"math"
	"testing"

	"oraclesize/internal/graphgen"
)

func TestInstanceValidate(t *testing.T) {
	good := Instance{N: 5, X: []graphgen.LabelEdge{{U: 1, V: 2}, {U: 3, V: 4}}, Y: []graphgen.LabelEdge{{U: 1, V: 5}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	dup := Instance{N: 5, X: []graphgen.LabelEdge{{U: 1, V: 2}, {U: 2, V: 1}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate X accepted")
	}
	overlap := Instance{N: 5, X: []graphgen.LabelEdge{{U: 1, V: 2}}, Y: []graphgen.LabelEdge{{U: 2, V: 1}}}
	if err := overlap.Validate(); err == nil {
		t.Error("X∩Y accepted")
	}
	outOfRange := Instance{N: 4, X: []graphgen.LabelEdge{{U: 1, V: 9}}}
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestFamilySize(t *testing.T) {
	// |I| = falling factorial of (C(n,2) - |Y|) over k.
	fam, err := Family(4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 6*5 {
		t.Errorf("family size %d, want 30", len(fam))
	}
	for _, in := range fam {
		if err := in.Validate(); err != nil {
			t.Fatalf("invalid family member: %v", err)
		}
	}
	famY, err := Family(4, 2, []graphgen.LabelEdge{{U: 1, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(famY) != 4*3 {
		t.Errorf("family size with |Y|=2: %d, want 12", len(famY))
	}
	if _, err := Family(3, 9, nil); err == nil {
		t.Error("oversized X accepted")
	}
}

func TestPlayAgainstFixedInstance(t *testing.T) {
	in := Instance{N: 5, X: []graphgen.LabelEdge{{U: 2, V: 4}, {U: 1, V: 3}}}
	probes, err := Play(in, SweepScheme{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep probes lexicographically; {1,3} is the 2nd edge, {2,4} the 6th.
	if probes != 6 {
		t.Errorf("sweep used %d probes, want 6", probes)
	}
}

func TestPlayRespectsY(t *testing.T) {
	// Edges in Y are never probed by the schemes.
	y := []graphgen.LabelEdge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}}
	in := Instance{N: 5, X: []graphgen.LabelEdge{{U: 1, V: 5}}, Y: y}
	probes, err := Play(in, SweepScheme{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if probes != 1 {
		t.Errorf("sweep with Y used %d probes, want 1", probes)
	}
}

func TestPlayBudgetExceeded(t *testing.T) {
	in := Instance{N: 5, X: []graphgen.LabelEdge{{U: 4, V: 5}}}
	if _, err := Play(in, SweepScheme{}, 3); err == nil {
		t.Error("probe budget not enforced")
	}
}

func TestAdversaryForcesLowerBound(t *testing.T) {
	// Lemma 2.1: every scheme needs >= log2(|I|/|X|!) probes against the
	// adversary.
	cases := []struct{ n, k int }{
		{4, 1}, {4, 2}, {5, 1}, {5, 2}, {5, 3}, {6, 2},
	}
	for _, tc := range cases {
		fam, err := Family(tc.n, tc.k, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := LowerBound(len(fam), tc.k)
		schemes := []Scheme{
			SweepScheme{},
			&RandomScheme{Seed: 42},
			&GreedySplitScheme{Family: fam},
		}
		for _, s := range schemes {
			probes, err := PlayAdversary(fam, s, 10000)
			if err != nil {
				t.Errorf("n=%d k=%d %s: %v", tc.n, tc.k, s.Name(), err)
				continue
			}
			if float64(probes) < bound {
				t.Errorf("n=%d k=%d %s: %d probes < Lemma 2.1 bound %.2f",
					tc.n, tc.k, s.Name(), probes, bound)
			}
		}
	}
}

func TestAdversaryAnswersAreConsistent(t *testing.T) {
	// Whatever the adversary answers must correspond to at least one
	// remaining instance, and the final answer set must pin down X.
	fam, err := Family(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(fam)
	if err != nil {
		t.Fatal(err)
	}
	h := &History{N: 5, XSize: 2}
	s := SweepScheme{}
	for h.Found() < 2 {
		e, ok := s.Next(h)
		if !ok {
			t.Fatal("sweep abandoned")
		}
		p := adv.Answer(e)
		if adv.ActiveCount() == 0 {
			t.Fatal("adversary emptied its active set")
		}
		h.Probes = append(h.Probes, p)
	}
	// All surviving instances agree with every probe.
	for _, p := range h.Probes {
		// Re-check against one survivor via a fresh adversary is overkill;
		// instead assert the probe log is self-consistent: labels distinct.
		if p.Special && (p.Label < 1 || p.Label > 2) {
			t.Errorf("revealed label %d out of range", p.Label)
		}
	}
	seen := map[int]bool{}
	for _, p := range h.Probes {
		if p.Special {
			if seen[p.Label] {
				t.Errorf("label %d revealed twice", p.Label)
			}
			seen[p.Label] = true
		}
	}
}

func TestAdversaryHalvingInvariant(t *testing.T) {
	// Each non-special answer keeps at least half the active instances;
	// each special answer keeps at least 1/(2(|X|-r)) of them.
	fam, err := Family(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(fam)
	if err != nil {
		t.Fatal(err)
	}
	h := &History{N: 5, XSize: 2}
	s := &RandomScheme{Seed: 7}
	found := 0
	for found < 2 {
		e, ok := s.Next(h)
		if !ok {
			t.Fatal("scheme abandoned")
		}
		before := adv.ActiveCount()
		p := adv.Answer(e)
		after := adv.ActiveCount()
		if p.Special {
			den := 2 * (2 - found)
			if after*den < before {
				t.Errorf("special answer kept %d of %d < 1/%d", after, before, den)
			}
			found++
		} else {
			if 2*after < before {
				t.Errorf("regular answer kept %d of %d < half", after, before)
			}
		}
		h.Probes = append(h.Probes, p)
	}
}

func TestGreedySplitBeatsSweep(t *testing.T) {
	// The informed strategy should not be (much) worse than blind sweep.
	fam, err := Family(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := PlayAdversary(fam, SweepScheme{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := PlayAdversary(fam, &GreedySplitScheme{Family: fam}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if greedy > sweep {
		t.Errorf("greedy (%d probes) worse than sweep (%d)", greedy, sweep)
	}
	// And greedy must be within a constant factor of the bound.
	bound := LowerBound(len(fam), 1)
	if float64(greedy) > 4*bound+8 {
		t.Errorf("greedy used %d probes, bound %.2f", greedy, bound)
	}
}

func TestLowerBoundFormula(t *testing.T) {
	if got := LowerBound(1024, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("LowerBound(1024,1) = %v", got)
	}
	// log2(64/2!) = 5.
	if got := LowerBound(64, 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("LowerBound(64,2) = %v", got)
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{N: 4, XSize: 1}
	e := graphgen.LabelEdge{U: 1, V: 2}
	if h.Probed(e) {
		t.Error("unprobed edge reported probed")
	}
	h.Probes = append(h.Probes, Probe{Edge: e, Special: true, Label: 1})
	if !h.Probed(graphgen.LabelEdge{U: 2, V: 1}) {
		t.Error("probed edge (reversed) not found")
	}
	if h.Found() != 1 {
		t.Errorf("Found = %d", h.Found())
	}
}

func BenchmarkAdversaryGame(b *testing.B) {
	fam, err := Family(5, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlayAdversary(fam, SweepScheme{}, 10000); err != nil {
			b.Fatal(err)
		}
	}
}
