// Package trace records and checks simulation event traces. The paper's
// claims are about *what the executions do* — which edges carry messages,
// whether non-source nodes stay silent before being woken, whether the
// source message crosses each tree edge once — so the simulator can emit a
// structured trace and this package provides the corresponding invariant
// checkers.
package trace

import (
	"fmt"
	"sync"

	"oraclesize/internal/graph"
	"oraclesize/internal/scheme"
)

// EventKind distinguishes trace entries.
type EventKind uint8

// Trace event kinds.
const (
	// EventSend records a message leaving a node.
	EventSend EventKind = iota + 1
	// EventDeliver records a message arriving at a node.
	EventDeliver
	// EventInformed records a node becoming informed.
	EventInformed
)

// Event is one entry of a simulation trace.
type Event struct {
	Kind EventKind
	// Seq is the global sequence number, increasing over the run.
	Seq int
	// Node is the acting node: sender for EventSend, receiver otherwise.
	Node graph.NodeID
	// Peer is the other endpoint of the edge (receiver for EventSend,
	// sender for EventDeliver); -1 for EventInformed.
	Peer graph.NodeID
	// Port is the local port at Node; -1 for EventInformed.
	Port int
	// Msg is the transmitted message (zero for EventInformed).
	Msg scheme.Message
}

// Recorder accumulates events. A nil *Recorder is valid and records nothing,
// so call sites need no guards.
//
// Concurrency contract: Append, Events and Len are safe for concurrent use
// — appends from multiple goroutines (the goroutine engine, a serving
// context running traced simulations in parallel) serialize on an internal
// mutex, and sequence numbers reflect that serialization order, which for
// concurrent appenders is one valid interleaving rather than a canonical
// one. Events returns the live slice, not a copy: read it only after every
// appender has stopped (checkers run post-run, so this is the natural call
// pattern).
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    int
}

// Append adds an event, assigning its sequence number.
func (r *Recorder) Append(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns the recorded events in order. See the Recorder contract:
// the returned slice aliases internal state, so call this only after all
// concurrent appenders have finished.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// CheckWakeupLegality verifies the defining constraint of wakeup schemes:
// no node other than the source sends a message before its first delivery.
func CheckWakeupLegality(events []Event, source graph.NodeID) error {
	delivered := make(map[graph.NodeID]bool)
	for _, e := range events {
		switch e.Kind {
		case EventDeliver:
			delivered[e.Node] = true
		case EventSend:
			if e.Node != source && !delivered[e.Node] {
				return fmt.Errorf("trace: node %d sent %v before being woken (seq %d)", e.Node, e.Msg.Kind, e.Seq)
			}
		}
	}
	return nil
}

// edgeKey is an undirected edge in canonical orientation.
type edgeKey struct{ u, v graph.NodeID }

func keyOf(a, b graph.NodeID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{u: a, v: b}
}

// EdgeTraversals counts, per undirected edge, how many sends crossed it.
func EdgeTraversals(events []Event) map[graph.Edge]int {
	counts := make(map[edgeKey]int)
	for _, e := range events {
		if e.Kind == EventSend {
			counts[keyOf(e.Node, e.Peer)]++
		}
	}
	out := make(map[graph.Edge]int, len(counts))
	for k, c := range counts {
		out[graph.Edge{U: k.u, V: k.v}] = c
	}
	return out
}

// CheckTrafficWithinEdges verifies that every send crossed an edge in the
// allowed set (given in canonical orientation, ports ignored). Theorem 2.1's
// wakeup and Theorem 3.1's Scheme B send only along spanning-tree edges.
func CheckTrafficWithinEdges(events []Event, allowed []graph.Edge) error {
	ok := make(map[edgeKey]bool, len(allowed))
	for _, e := range allowed {
		ok[keyOf(e.U, e.V)] = true
	}
	for _, e := range events {
		if e.Kind == EventSend && !ok[keyOf(e.Node, e.Peer)] {
			return fmt.Errorf("trace: send on non-tree edge {%d,%d} (seq %d)", e.Node, e.Peer, e.Seq)
		}
	}
	return nil
}

// CheckPerEdgeDirectionalUniqueness verifies that no message of the given
// kind crossed the same edge twice in the same direction — the paper's
// argument that Scheme B's message M "does not traverse an edge more than
// once" from any single endpoint.
func CheckPerEdgeDirectionalUniqueness(events []Event, kind scheme.Kind) error {
	type dirKey struct {
		from, to graph.NodeID
	}
	seen := make(map[dirKey]bool)
	for _, e := range events {
		if e.Kind != EventSend || e.Msg.Kind != kind {
			continue
		}
		k := dirKey{from: e.Node, to: e.Peer}
		if seen[k] {
			return fmt.Errorf("trace: %v crossed %d->%d twice (seq %d)", kind, e.Node, e.Peer, e.Seq)
		}
		seen[k] = true
	}
	return nil
}

// CountByKind tallies sends per message kind.
func CountByKind(events []Event) map[scheme.Kind]int {
	out := make(map[scheme.Kind]int)
	for _, e := range events {
		if e.Kind == EventSend {
			out[e.Msg.Kind]++
		}
	}
	return out
}
