package trace

import (
	"strings"
	"sync"
	"testing"

	"oraclesize/internal/graph"
	"oraclesize/internal/scheme"
)

func send(from, to graph.NodeID, kind scheme.Kind) Event {
	return Event{Kind: EventSend, Node: from, Peer: to, Port: 0, Msg: scheme.Message{Kind: kind}}
}

func deliver(to, from graph.NodeID, kind scheme.Kind) Event {
	return Event{Kind: EventDeliver, Node: to, Peer: from, Port: 0, Msg: scheme.Message{Kind: kind}}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: EventSend})
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder recorded something")
	}
}

func TestRecorderSequencesEvents(t *testing.T) {
	r := &Recorder{}
	r.Append(send(0, 1, scheme.KindM))
	r.Append(deliver(1, 0, scheme.KindM))
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("len = %d", len(events))
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Errorf("sequence numbers: %d, %d", events[0].Seq, events[1].Seq)
	}
}

func TestCheckWakeupLegality(t *testing.T) {
	// Source sends first: legal.
	ok := []Event{send(0, 1, scheme.KindM), deliver(1, 0, scheme.KindM), send(1, 2, scheme.KindM)}
	if err := CheckWakeupLegality(ok, 0); err != nil {
		t.Errorf("legal trace rejected: %v", err)
	}
	// Node 2 transmits before any delivery: illegal.
	bad := []Event{send(0, 1, scheme.KindM), send(2, 1, scheme.KindHello)}
	if err := CheckWakeupLegality(bad, 0); err == nil {
		t.Error("illegal trace accepted")
	}
	// A lone spontaneous send is fine when the sender is the source.
	solo := []Event{send(2, 1, scheme.KindHello)}
	if err := CheckWakeupLegality(solo, 2); err != nil {
		t.Errorf("source transmission rejected: %v", err)
	}
}

func TestEdgeTraversals(t *testing.T) {
	events := []Event{
		send(0, 1, scheme.KindM),
		send(1, 0, scheme.KindM), // same edge, other direction
		send(1, 2, scheme.KindHello),
		deliver(1, 0, scheme.KindM), // deliveries don't count
	}
	counts := EdgeTraversals(events)
	if counts[graph.Edge{U: 0, V: 1}] != 2 {
		t.Errorf("edge {0,1} count = %d", counts[graph.Edge{U: 0, V: 1}])
	}
	if counts[graph.Edge{U: 1, V: 2}] != 1 {
		t.Errorf("edge {1,2} count = %d", counts[graph.Edge{U: 1, V: 2}])
	}
}

func TestCheckTrafficWithinEdges(t *testing.T) {
	allowed := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	good := []Event{send(0, 1, scheme.KindM), send(2, 1, scheme.KindM)}
	if err := CheckTrafficWithinEdges(good, allowed); err != nil {
		t.Errorf("allowed traffic rejected: %v", err)
	}
	bad := []Event{send(0, 2, scheme.KindM)}
	if err := CheckTrafficWithinEdges(bad, allowed); err == nil {
		t.Error("off-tree traffic accepted")
	}
}

func TestCheckPerEdgeDirectionalUniqueness(t *testing.T) {
	good := []Event{
		send(0, 1, scheme.KindM),
		send(1, 0, scheme.KindM),     // other direction is fine
		send(0, 1, scheme.KindHello), // other kind is fine
	}
	if err := CheckPerEdgeDirectionalUniqueness(good, scheme.KindM); err != nil {
		t.Errorf("unique traffic rejected: %v", err)
	}
	bad := append(good, send(0, 1, scheme.KindM))
	if err := CheckPerEdgeDirectionalUniqueness(bad, scheme.KindM); err == nil {
		t.Error("duplicate directed send accepted")
	}
}

func TestCountByKind(t *testing.T) {
	events := []Event{
		send(0, 1, scheme.KindM),
		send(1, 2, scheme.KindM),
		send(2, 3, scheme.KindHello),
		deliver(1, 0, scheme.KindM),
	}
	counts := CountByKind(events)
	if counts[scheme.KindM] != 2 || counts[scheme.KindHello] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFormatAndSummary(t *testing.T) {
	events := []Event{
		{Kind: EventSend, Seq: 0, Node: 3, Peer: 5, Port: 1, Msg: scheme.Message{Kind: scheme.KindM}},
		{Kind: EventDeliver, Seq: 1, Node: 5, Peer: 3, Port: 0, Msg: scheme.Message{Kind: scheme.KindM}},
		{Kind: EventInformed, Seq: 2, Node: 5, Peer: -1, Port: -1},
	}
	out := Format(events)
	for _, want := range []string{"send", "deliver", "informed", "[M]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	sum := Summary(events)
	if sum != "1 sends, 1 deliveries, 1 nodes informed" {
		t.Errorf("Summary = %q", sum)
	}
}

// TestRecorderConcurrentAppend exercises the Recorder's concurrency
// contract: parallel appenders must neither race (the -race job watches
// this test) nor lose or duplicate sequence numbers.
func TestRecorderConcurrentAppend(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
	)
	r := &Recorder{}
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(send(graph.NodeID(w), graph.NodeID(w+1), scheme.KindM))
			}
		}()
	}
	wg.Wait()
	events := r.Events()
	if len(events) != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", len(events), writers*perWriter)
	}
	if r.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(events))
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d; sequence numbers must be dense", i, e.Seq)
		}
	}
}
