package trace

import (
	"fmt"
	"strings"
)

// Format renders a trace as human-readable lines, one per event — the
// debugging view of an execution:
//
//	#0  send     3 -[M]-> 5 (port 1)
//	#1  deliver  5 <-[M]- 3 (port 0)
//	#2  informed 5
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		switch e.Kind {
		case EventSend:
			fmt.Fprintf(&b, "#%-4d send     %d -[%s]-> %d (port %d)\n",
				e.Seq, e.Node, e.Msg.Kind, e.Peer, e.Port)
		case EventDeliver:
			fmt.Fprintf(&b, "#%-4d deliver  %d <-[%s]- %d (port %d)\n",
				e.Seq, e.Node, e.Msg.Kind, e.Peer, e.Port)
		case EventInformed:
			fmt.Fprintf(&b, "#%-4d informed %d\n", e.Seq, e.Node)
		default:
			fmt.Fprintf(&b, "#%-4d ?%d node=%d\n", e.Seq, e.Kind, e.Node)
		}
	}
	return b.String()
}

// Summary condenses a trace into one line of counters.
func Summary(events []Event) string {
	sends, delivers, informs := 0, 0, 0
	for _, e := range events {
		switch e.Kind {
		case EventSend:
			sends++
		case EventDeliver:
			delivers++
		case EventInformed:
			informs++
		}
	}
	return fmt.Sprintf("%d sends, %d deliveries, %d nodes informed", sends, delivers, informs)
}
