package mst

import (
	"fmt"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/spantree"
)

// Oracle writes each node's parent port in the exact MST (rooted at node
// 0) — Θ(n log n) bits. Paired with Silent, the tree is output with zero
// messages.
type Oracle struct{}

// Name implements oracle.Oracle.
func (Oracle) Name() string { return "mst-tree" }

// Advise implements oracle.Oracle. The source argument is ignored: the
// MST does not depend on it.
func (Oracle) Advise(g *graph.Graph, _ graph.NodeID) (sim.Advice, error) {
	edges, err := Exact(g)
	if err != nil {
		return nil, err
	}
	tree, err := spantree.Rooted(g, edges, 0)
	if err != nil {
		return nil, err
	}
	width := oracle.FieldWidth(g.N())
	advice := make(sim.Advice, g.N())
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		var w bitstring.Writer
		w.AppendDoubled(uint64(width))
		if v == 0 {
			w.WriteBit(true)
		} else {
			w.WriteBit(false)
			w.WriteFixed(uint64(tree.ParentPort[v]), width)
		}
		advice[v] = w.String()
	}
	return advice, nil
}

// Silent consumes Oracle advice and outputs the parent port without
// transmitting.
type Silent struct{}

// Name implements scheme.Algorithm.
func (Silent) Name() string { return "mst-oracle" }

// NewNode implements scheme.Algorithm.
func (Silent) NewNode(info scheme.NodeInfo) scheme.Node {
	nd := &silentNode{parent: -1}
	r := bitstring.NewReader(info.Advice)
	width64, err := r.ReadDoubled()
	if err != nil {
		return nd
	}
	width := int(width64)
	if width <= 0 || width > 62 {
		return nd
	}
	root, err := r.ReadBit()
	if err != nil {
		return nd
	}
	nd.decided = true
	if !root {
		p, err := r.ReadFixed(width)
		if err != nil {
			nd.decided = false
			return nd
		}
		nd.parent = int(p)
	}
	return nd
}

type silentNode struct {
	decided bool
	parent  int
}

func (silentNode) Init() []scheme.Send                       { return nil }
func (silentNode) Receive(scheme.Message, int) []scheme.Send { return nil }

// VerifySilent checks that the retained automata's parent ports spell out
// the exact MST.
func VerifySilent(g *graph.Graph, nodes []scheme.Node) error {
	if len(nodes) != g.N() {
		return fmt.Errorf("mst: %d automata for %d nodes", len(nodes), g.N())
	}
	var edges []graph.Edge
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		nd, ok := nodes[v].(*silentNode)
		if !ok {
			return fmt.Errorf("mst: unexpected automaton %T", nodes[v])
		}
		if !nd.decided {
			return fmt.Errorf("mst: node %d undecided", v)
		}
		if v == 0 {
			if nd.parent != -1 {
				return fmt.Errorf("mst: root claims a parent")
			}
			continue
		}
		if nd.parent < 0 || nd.parent >= g.Degree(v) {
			return fmt.Errorf("mst: node %d parent port %d out of range", v, nd.parent)
		}
		u, q := g.Neighbor(v, nd.parent)
		edges = append(edges, graph.Edge{U: v, V: u, PU: nd.parent, PV: q}.Canonical())
	}
	want, err := Exact(g)
	if err != nil {
		return err
	}
	sortEdges(edges)
	if !SameEdgeSet(edges, want) {
		return fmt.Errorf("mst: output differs from the exact MST")
	}
	return nil
}
