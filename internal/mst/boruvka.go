package mst

import (
	"fmt"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
)

// Borůvka phase protocol. Each phase is one simulation run:
//
//  1. every node sends an identification probe (fragment id, its own port
//     number, its label) on every port — so both endpoints of every edge
//     learn whether it leaves their fragment and what it weighs;
//  2. once a node has heard all its neighbors, it folds its best outgoing
//     candidate with its children's reports and convergecasts the minimum
//     up the fragment tree (ports from the phase advice);
//  3. each fragment root outputs the fragment's minimum outgoing edge.
//
// The driver (Boruvka, below) merges fragments on the proposed edges,
// rebuilds the fragment trees, and repeats until one fragment remains.

// BoruvkaResult summarizes a full distributed run.
type BoruvkaResult struct {
	// Edges is the constructed tree (canonical, sorted).
	Edges []graph.Edge
	// Phases is the number of Borůvka rounds executed.
	Phases int
	// Messages totals all phases' message counts.
	Messages int
	// MessageBits totals the bandwidth across phases.
	MessageBits int
}

// Boruvka runs the zero-advice distributed MST construction. The scheduler
// factory (nil for FIFO) orders deliveries within each phase; the protocol
// is asynchrony-safe because every step waits on explicit counters.
func Boruvka(g *graph.Graph, newSched sim.SchedulerFactory) (*BoruvkaResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mst: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("mst: graph is not connected")
	}
	res := &BoruvkaResult{}
	if n == 1 {
		return res, nil
	}

	dsu := newDSU(n)
	var chosen []graph.Edge
	fragments := n
	for fragments > 1 {
		res.Phases++
		if res.Phases > 2*bitsLen(n)+4 {
			return nil, fmt.Errorf("mst: phase bound exceeded (%d fragments left)", fragments)
		}
		advice, roots, err := phaseAdvice(g, dsu, chosen)
		if err != nil {
			return nil, err
		}
		var sched sim.Scheduler
		if newSched != nil {
			sched = newSched()
		}
		run, err := sim.Run(g, 0, phaseAlgo{}, advice, sim.Options{
			Scheduler:   sched,
			RetainNodes: true,
			MaxMessages: 8*(g.M()+n) + 1024,
		})
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d: %w", res.Phases, err)
		}
		res.Messages += run.Messages
		res.MessageBits += run.MessageBits

		proposals, err := collectProposals(g, run.Nodes, roots)
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d: %w", res.Phases, err)
		}
		if len(proposals) == 0 {
			return nil, fmt.Errorf("mst: phase %d proposed no edges with %d fragments", res.Phases, fragments)
		}
		for _, e := range proposals {
			ru, rv := dsu.find(e.U), dsu.find(e.V)
			if ru == rv {
				continue // the two endpoints' fragments chose the same edge
			}
			dsu.union(ru, rv)
			chosen = append(chosen, e.Canonical())
			fragments--
		}
	}
	sortEdges(chosen)
	res.Edges = chosen
	return res, nil
}

func bitsLen(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	return b
}

// phaseAdvice encodes, for every node: the field width (doubled code), the
// fragment id (gamma), a root marker, the parent port when not the root,
// and the child ports — the node's view of its fragment tree.
func phaseAdvice(g *graph.Graph, dsu *dsu, chosen []graph.Edge) (sim.Advice, map[graph.NodeID]bool, error) {
	n := g.N()
	// Fragment id := smallest label in the fragment.
	fragID := make(map[graph.NodeID]int64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		r := dsu.find(v)
		if cur, ok := fragID[r]; !ok || g.Label(v) < cur {
			fragID[r] = g.Label(v)
		}
	}
	// Fragment trees: BFS over chosen edges, rooted at the min-label node.
	adj := make([][]graph.Edge, n)
	for _, e := range chosen {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	parentPort := make([]int, n)
	childPorts := make([][]int, n)
	isRoot := make(map[graph.NodeID]bool, n)
	visited := make([]bool, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		r := dsu.find(v)
		if g.Label(v) != fragID[r] {
			continue
		}
		// v is its fragment's root.
		isRoot[v] = true
		parentPort[v] = -1
		visited[v] = true
		queue := []graph.NodeID{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, e := range adj[x] {
				y, px, py := e.V, e.PU, e.PV
				if y == x {
					y, px, py = e.U, e.PV, e.PU
				}
				if visited[y] {
					continue
				}
				visited[y] = true
				parentPort[y] = py
				childPorts[x] = append(childPorts[x], px)
				queue = append(queue, y)
			}
		}
	}
	for v := range visited {
		if !visited[v] {
			return nil, nil, fmt.Errorf("mst: node %d not covered by fragment trees", v)
		}
	}
	width := oracle.FieldWidth(n)
	advice := make(sim.Advice, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		var w bitstring.Writer
		w.AppendDoubled(uint64(width))
		w.AppendGamma0(uint64(fragID[dsu.find(v)]))
		if isRoot[v] {
			w.WriteBit(true)
		} else {
			w.WriteBit(false)
			w.WriteFixed(uint64(parentPort[v]), width)
		}
		for _, p := range childPorts[v] {
			w.WriteFixed(uint64(p), width)
		}
		advice[v] = w.String()
	}
	return advice, isRoot, nil
}

// collectProposals reads the fragment roots' outcomes and resolves them to
// concrete edges.
func collectProposals(g *graph.Graph, nodes []scheme.Node, roots map[graph.NodeID]bool) ([]graph.Edge, error) {
	var out []graph.Edge
	portIdx := g.PortIndex()
	for v := range roots {
		nd, ok := nodes[v].(*phaseNode)
		if !ok {
			return nil, fmt.Errorf("mst: unexpected automaton %T", nodes[v])
		}
		if !nd.done {
			return nil, fmt.Errorf("mst: fragment root %d did not finish its phase", v)
		}
		if !nd.best.valid {
			// A fragment with no outgoing edge can only be the whole
			// graph; with >1 fragments on a connected graph this is a bug.
			return nil, fmt.Errorf("mst: fragment root %d found no outgoing edge", v)
		}
		u, uok := g.NodeByLabel(nd.best.lo)
		w, wok := g.NodeByLabel(nd.best.hi)
		if !uok || !wok {
			return nil, fmt.Errorf("mst: proposal labels {%d,%d} unknown", nd.best.lo, nd.best.hi)
		}
		p := portIdx.PortTo(u, w)
		if p < 0 {
			return nil, fmt.Errorf("mst: proposal {%d,%d} is not an edge", nd.best.lo, nd.best.hi)
		}
		to, q := g.Neighbor(u, p)
		out = append(out, graph.Edge{U: u, V: to, PU: p, PV: q}.Canonical())
	}
	return out, nil
}

// candidate is an edge in the convergecast, as (weight, endpoint labels).
type candidate struct {
	valid  bool
	w      int
	lo, hi int64
}

func better(a, b candidate) candidate {
	switch {
	case !a.valid:
		return b
	case !b.valid:
		return a
	case a.w != b.w:
		if a.w < b.w {
			return a
		}
		return b
	case a.lo != b.lo:
		if a.lo < b.lo {
			return a
		}
		return b
	default:
		if a.hi <= b.hi {
			return a
		}
		return b
	}
}

// phaseAlgo is the per-phase automaton.
type phaseAlgo struct{}

// Name implements scheme.Algorithm.
func (phaseAlgo) Name() string { return "boruvka-phase" }

// NewNode implements scheme.Algorithm.
func (phaseAlgo) NewNode(info scheme.NodeInfo) scheme.Node {
	nd := &phaseNode{info: info, parent: -1}
	r := bitstring.NewReader(info.Advice)
	width64, err := r.ReadDoubled()
	if err != nil {
		nd.broken = true
		return nd
	}
	width := int(width64)
	if width <= 0 || width > 62 {
		nd.broken = true
		return nd
	}
	frag, err := r.ReadGamma0()
	if err != nil {
		nd.broken = true
		return nd
	}
	nd.frag = int64(frag)
	root, err := r.ReadBit()
	if err != nil {
		nd.broken = true
		return nd
	}
	nd.isRoot = root
	if !root {
		p, err := r.ReadFixed(width)
		if err != nil {
			nd.broken = true
			return nd
		}
		nd.parent = int(p)
	}
	for r.Remaining() >= width {
		p, err := r.ReadFixed(width)
		if err != nil {
			nd.broken = true
			return nd
		}
		nd.children = append(nd.children, int(p))
	}
	return nd
}

type phaseNode struct {
	info     scheme.NodeInfo
	broken   bool
	frag     int64
	isRoot   bool
	parent   int
	children []int

	probesSeen  int
	reportsSeen int
	best        candidate // own outgoing candidate folded with children's
	sentUp      bool
	done        bool
}

func (nd *phaseNode) Init() []scheme.Send {
	if nd.broken {
		return nil
	}
	// Step 1: identify ourselves on every port. Values: fragment id, our
	// port number (so the receiver can compute the edge weight), our label.
	sends := make([]scheme.Send, 0, nd.info.Degree)
	for p := 0; p < nd.info.Degree; p++ {
		sends = append(sends, scheme.Send{Port: p, Msg: scheme.Message{
			Kind:   scheme.KindProbe,
			Values: []int64{nd.frag, int64(p), nd.info.Label},
		}})
	}
	// A single-node fragment with degree 0 cannot exist in a connected
	// graph with n > 1; for n == 1 the driver never starts a phase.
	return sends
}

func (nd *phaseNode) Receive(msg scheme.Message, port int) []scheme.Send {
	if nd.broken {
		return nil
	}
	switch msg.Kind {
	case scheme.KindProbe:
		if len(msg.Values) != 3 {
			return nil
		}
		nd.probesSeen++
		nbrFrag, nbrPort, nbrLabel := msg.Values[0], int(msg.Values[1]), msg.Values[2]
		if nbrFrag != nd.frag {
			w := port
			if nbrPort < w {
				w = nbrPort
			}
			lo, hi := nd.info.Label, nbrLabel
			if lo > hi {
				lo, hi = hi, lo
			}
			nd.best = better(nd.best, candidate{valid: true, w: w, lo: lo, hi: hi})
		}
	case scheme.KindUp:
		nd.reportsSeen++
		if len(msg.Values) == 3 {
			nd.best = better(nd.best, candidate{
				valid: true,
				w:     int(msg.Values[0]),
				lo:    msg.Values[1],
				hi:    msg.Values[2],
			})
		}
		// len 0: the child subtree had no outgoing edge.
	default:
		return nil
	}
	return nd.maybeReport()
}

// maybeReport fires the convergecast step when both counters are satisfied.
func (nd *phaseNode) maybeReport() []scheme.Send {
	if nd.sentUp || nd.done {
		return nil
	}
	if nd.probesSeen < nd.info.Degree || nd.reportsSeen < len(nd.children) {
		return nil
	}
	if nd.isRoot {
		nd.done = true
		return nil
	}
	nd.sentUp = true
	msg := scheme.Message{Kind: scheme.KindUp}
	if nd.best.valid {
		msg.Values = []int64{int64(nd.best.w), nd.best.lo, nd.best.hi}
	}
	return []scheme.Send{{Port: nd.parent, Msg: msg}}
}

// dsu is a union-find over NodeIDs.
type dsu struct {
	parent []graph.NodeID
	size   []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]graph.NodeID, n), size: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = graph.NodeID(i)
		d.size[i] = 1
	}
	return d
}

func (d *dsu) find(v graph.NodeID) graph.NodeID {
	for d.parent[v] != v {
		d.parent[v] = d.parent[d.parent[v]]
		v = d.parent[v]
	}
	return v
}

func (d *dsu) union(a, b graph.NodeID) {
	a, b = d.find(a), d.find(b)
	if a == b {
		return
	}
	if d.size[a] < d.size[b] {
		a, b = b, a
	}
	d.parent[b] = a
	d.size[a] += d.size[b]
}
