package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
	"oraclesize/internal/spantree"
)

func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	t.Helper()
	return func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	return map[string]*graph.Graph{
		"path":      mustGraph(t)(graphgen.Path(12)),
		"cycle":     mustGraph(t)(graphgen.Cycle(15)),
		"grid":      mustGraph(t)(graphgen.Grid(5, 5)),
		"hypercube": mustGraph(t)(graphgen.Hypercube(5)),
		"complete":  mustGraph(t)(graphgen.Complete(12)),
		"random":    mustGraph(t)(graphgen.RandomConnected(40, 120, rng)),
		"dense":     mustGraph(t)(graphgen.RandomConnected(24, 200, rng)),
	}
}

func TestExactIsSpanningTree(t *testing.T) {
	for name, g := range testGraphs(t) {
		edges, err := Exact(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(edges) != g.N()-1 {
			t.Errorf("%s: %d edges", name, len(edges))
		}
		if _, err := spantree.Rooted(g, edges, 0); err != nil {
			t.Errorf("%s: not spanning: %v", name, err)
		}
	}
}

func TestExactMinimizesWeight(t *testing.T) {
	// The exact MST's total weight never exceeds any spanning tree we can
	// easily produce (BFS, DFS, light).
	g := mustGraph(t)(graphgen.RandomConnected(30, 200, rand.New(rand.NewSource(5))))
	mstEdges, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(edges []graph.Edge) int {
		total := 0
		for _, e := range edges {
			total += Weight(e)
		}
		return total
	}
	light, err := spantree.Light(g)
	if err != nil {
		t.Fatal(err)
	}
	if sum(mstEdges) > sum(light) {
		t.Errorf("MST weight %d > light tree weight %d", sum(mstEdges), sum(light))
	}
	bfs, err := spantree.BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum(mstEdges) > sum(bfs.Edges()) {
		t.Errorf("MST weight %d > BFS tree weight %d", sum(mstEdges), sum(bfs.Edges()))
	}
}

func TestBoruvkaMatchesExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := Boruvka(g, nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		want, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if !SameEdgeSet(res.Edges, want) {
			t.Errorf("%s: Borůvka tree differs from the exact MST", name)
		}
		if res.Phases > bitsLen(g.N())+1 {
			t.Errorf("%s: %d phases for n=%d", name, res.Phases, g.N())
		}
		// O((m+n) log n) messages.
		if res.Messages > (2*g.M()+g.N())*(bitsLen(g.N())+1) {
			t.Errorf("%s: %d messages", name, res.Messages)
		}
	}
}

func TestBoruvkaUnderAdversarialSchedulers(t *testing.T) {
	g := mustGraph(t)(graphgen.RandomConnected(30, 90, rand.New(rand.NewSource(9))))
	want, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	for name, factory := range sim.Schedulers(31) {
		res, err := Boruvka(g, factory)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !SameEdgeSet(res.Edges, want) {
			t.Errorf("%s: wrong tree", name)
		}
	}
}

func TestBoruvkaSingleAndTiny(t *testing.T) {
	single, err := graph.NewBuilder(1).Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Boruvka(single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 || res.Phases != 0 {
		t.Errorf("single node: %+v", res)
	}
	pair := mustGraph(t)(graphgen.Path(2))
	res, err = Boruvka(pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 || res.Phases != 1 {
		t.Errorf("pair: %+v", res)
	}
}

func TestBoruvkaRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(2, 3)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Boruvka(g, nil); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := Exact(g); err == nil {
		t.Error("Exact accepted disconnected graph")
	}
}

func TestOracleSilentMatchesExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		advice, err := Oracle{}.Advise(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := sim.Run(g, 0, Silent{}, advice, sim.Options{RetainNodes: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Messages != 0 {
			t.Errorf("%s: oracle-fed run sent %d messages", name, res.Messages)
		}
		if err := VerifySilent(g, res.Nodes); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBoruvkaPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64, nSeed, mSeed uint8) bool {
		n := int(nSeed%30) + 3
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mSeed)%(maxM-(n-1)+1)
		g, err := graphgen.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		res, err := Boruvka(g, nil)
		if err != nil {
			return false
		}
		want, err := Exact(g)
		if err != nil {
			return false
		}
		return SameEdgeSet(res.Edges, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBoruvka(b *testing.B) {
	g, err := graphgen.RandomConnected(256, 1024, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Boruvka(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactMST(b *testing.B) {
	g, err := graphgen.RandomConnected(256, 1024, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}
