// Package mst applies the oracle-size lens to minimum-spanning-tree
// construction, the second task the paper's §1.2 names. Edge weights are
// the paper's w(e) = min{port_u(e), port_v(e)}, totally ordered by
// (w, smaller endpoint label, larger endpoint label) so the MST is unique.
//
// Two points on the knowledge scale:
//
//   - zero advice: a distributed Borůvka. Each phase, every node exchanges
//     fragment identifiers with its neighbors (2m messages), fragments
//     convergecast their minimum outgoing edge to the fragment root
//     (< n messages), and the proposed edges merge the fragments. The
//     fragment trees and identifiers carried between phases are the
//     algorithm's own previous outputs; O(log n) phases, O((m+n)·log n)
//     messages in total.
//   - Θ(n log n) advice: the oracle writes each node's MST parent port;
//     nodes output the tree with zero messages.
//
// Verification is exact: the constructed edge set must equal the unique
// MST under the total order.
package mst

import (
	"fmt"
	"sort"

	"oraclesize/internal/graph"
)

// Weight is the paper's edge weight: the smaller port number.
func Weight(e graph.Edge) int {
	if e.PU < e.PV {
		return e.PU
	}
	return e.PV
}

// labelKey is the total order on edges: weight, then the two endpoint
// labels in sorted order.
type labelKey struct {
	w      int
	lo, hi int64
}

func keyOf(g *graph.Graph, e graph.Edge) labelKey {
	e = e.Canonical()
	lu, lv := g.Label(e.U), g.Label(e.V)
	if lu > lv {
		lu, lv = lv, lu
	}
	return labelKey{w: Weight(e), lo: lu, hi: lv}
}

func keyLess(a, b labelKey) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return a.hi < b.hi
}

// Exact computes the unique MST under the total order, by Prim's algorithm
// with exact tie-breaking. Reference for verification.
func Exact(g *graph.Graph) ([]graph.Edge, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mst: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("mst: graph is not connected")
	}
	inTree := make([]bool, n)
	bestEdge := make([]graph.Edge, n)
	bestKey := make([]labelKey, n)
	hasBest := make([]bool, n)
	attach := func(v graph.NodeID) {
		inTree[v] = true
		hasBest[v] = false
		for p := 0; p < g.Degree(v); p++ {
			u, q := g.Neighbor(v, p)
			if inTree[u] {
				continue
			}
			e := graph.Edge{U: v, V: u, PU: p, PV: q}.Canonical()
			k := keyOf(g, e)
			if !hasBest[u] || keyLess(k, bestKey[u]) {
				bestEdge[u], bestKey[u], hasBest[u] = e, k, true
			}
		}
	}
	attach(0)
	edges := make([]graph.Edge, 0, n-1)
	for len(edges) < n-1 {
		pick := graph.NodeID(-1)
		for v := 0; v < n; v++ {
			if inTree[v] || !hasBest[v] {
				continue
			}
			if pick < 0 || keyLess(bestKey[v], bestKey[pick]) {
				pick = graph.NodeID(v)
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("mst: no crossing edge in a connected graph")
		}
		edges = append(edges, bestEdge[pick])
		attach(pick)
	}
	sortEdges(edges)
	return edges, nil
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i].Canonical(), edges[j].Canonical()
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

// SameEdgeSet reports whether two canonical edge lists contain the same
// undirected edges.
func SameEdgeSet(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[graph.Edge]bool, len(a))
	for _, e := range a {
		set[e.Canonical()] = true
	}
	for _, e := range b {
		if !set[e.Canonical()] {
			return false
		}
	}
	return true
}
