package gossip

import (
	"math/rand"
	"testing"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
)

func mustGraph(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	t.Helper()
	return func(g *graph.Graph, err error) *graph.Graph {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestDecodeRoleRoundTrip(t *testing.T) {
	g := mustGraph(t)(graphgen.Grid(4, 4))
	advice, err := Oracle{Root: 5}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	childCount := 0
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		role, err := DecodeRole(advice[v])
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		if role.IsRoot {
			roots++
			if role.ParentPort != -1 {
				t.Error("root has a parent port")
			}
		} else {
			if role.ParentPort < 0 || role.ParentPort >= g.Degree(v) {
				t.Errorf("node %d: parent port %d out of range", v, role.ParentPort)
			}
		}
		childCount += len(role.ChildPorts)
	}
	if roots != 1 {
		t.Errorf("%d roots", roots)
	}
	if childCount != g.N()-1 {
		t.Errorf("total children %d, want %d", childCount, g.N()-1)
	}
}

func TestDecodeRoleRejectsGarbage(t *testing.T) {
	if _, err := DecodeRole(bitstring.FromBits(0, 1)); err == nil {
		t.Error("garbage accepted")
	}
	var w bitstring.Writer
	w.AppendDoubled(4)
	w.WriteBit(false)
	w.WriteFixed(0, 4)
	w.WriteFixed(0, 3) // ragged tail
	if _, err := DecodeRole(w.String()); err == nil {
		t.Error("ragged advice accepted")
	}
}

func TestGossipExactly2NMinus2Messages(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	graphs := map[string]*graph.Graph{
		"path":      mustGraph(t)(graphgen.Path(20)),
		"star":      mustGraph(t)(graphgen.Star(16)),
		"grid":      mustGraph(t)(graphgen.Grid(5, 5)),
		"hypercube": mustGraph(t)(graphgen.Hypercube(5)),
		"random":    mustGraph(t)(graphgen.RandomConnected(40, 100, rng)),
		"complete":  mustGraph(t)(graphgen.Complete(12)),
	}
	for name, g := range graphs {
		res, verified, err := Run(g, sim.Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !verified {
			t.Errorf("%s: some node missed values", name)
		}
		want := 2 * (g.N() - 1)
		if res.Messages != want {
			t.Errorf("%s: %d messages, want exactly %d", name, res.Messages, want)
		}
		up, down := res.ByKind[scheme.KindUp], res.ByKind[scheme.KindDown]
		if up != g.N()-1 || down != g.N()-1 {
			t.Errorf("%s: up=%d down=%d, want %d each", name, up, down, g.N()-1)
		}
	}
}

func TestGossipAllSchedulers(t *testing.T) {
	g := mustGraph(t)(graphgen.RandomConnected(30, 70, rand.New(rand.NewSource(4))))
	for name, factory := range sim.Schedulers(11) {
		res, verified, err := Run(g, sim.Options{Scheduler: factory()})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !verified {
			t.Errorf("%s: incomplete value sets", name)
		}
		if res.Messages != 2*(g.N()-1) {
			t.Errorf("%s: %d messages", name, res.Messages)
		}
	}
}

func TestGossipSingleNode(t *testing.T) {
	b := graph.NewBuilder(1)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, verified, err := Run(g, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !verified || res.Messages != 0 {
		t.Errorf("verified=%v messages=%d", verified, res.Messages)
	}
}

func TestGossipOracleSizeThetaNLogN(t *testing.T) {
	// The gossip oracle is the wakeup oracle plus a parent port and root
	// marker per node: still Θ(n log n), and within a small constant of
	// n·ceil(log n) (the per-node doubled-code header adds ~12 bits).
	for _, n := range []int{64, 256, 1024} {
		g, err := graphgen.RandomConnected(n, 3*n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		advice, err := Oracle{}.Advise(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := n * oracle.FieldWidth(n)
		if advice.SizeBits() < ref/2 || advice.SizeBits() > 5*ref {
			t.Errorf("n=%d: gossip oracle %d bits vs reference %d", n, advice.SizeBits(), ref)
		}
	}
}

func TestGossipArbitraryLabels(t *testing.T) {
	b := graph.NewBuilder(5)
	labels := []int64{100, 7, 3000, 42, 9}
	for i, l := range labels {
		b.SetLabel(graph.NodeID(i), l)
	}
	for i := 0; i < 4; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(i+1))
	}
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	advice, err := Oracle{Root: 2}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, 0, Algorithm{}, advice, sim.Options{RetainNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range res.Nodes {
		gn := nd.(*node)
		vals := gn.Values()
		if len(vals) != 5 {
			t.Fatalf("node %d learned %d values: %v", i, len(vals), vals)
		}
		want := []int64{7, 9, 42, 100, 3000}
		for j := range want {
			if vals[j] != want[j] {
				t.Fatalf("node %d values = %v", i, vals)
			}
		}
	}
}

func TestGossipConcurrent(t *testing.T) {
	g := mustGraph(t)(graphgen.Grid(6, 6))
	advice, err := Oracle{}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := sim.RunConcurrent(g, 0, Algorithm{}, advice, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != 2*(g.N()-1) {
			t.Fatalf("run %d: %d messages, want %d", i, res.Messages, 2*(g.N()-1))
		}
	}
}

func BenchmarkGossip(b *testing.B) {
	g, err := graphgen.RandomConnected(512, 2048, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, verified, err := Run(g, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !verified {
			b.Fatal("incomplete")
		}
	}
}

func TestGossipCorruptAdviceDoesNotPanic(t *testing.T) {
	// A node with garbage advice goes inert; the run stalls rather than
	// panicking or sending junk.
	g := mustGraph(t)(graphgen.Path(4))
	advice, err := Oracle{}.Advise(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	advice[2] = bitstring.FromBits(0, 1) // malformed
	res, err := sim.Run(g, 0, Algorithm{}, advice, sim.Options{RetainNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages > 2*(g.N()-1) {
		t.Errorf("corrupt run sent %d messages", res.Messages)
	}
}
