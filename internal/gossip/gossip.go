// Package gossip extends the paper's program to the third communication
// primitive its introduction names: gossip, the all-to-all exchange in
// which every node starts with a private value and must learn everyone's.
// The paper's conclusion conjectures that oracles can measure the
// difficulty of "a broader range of distributed network problems"; this
// package instantiates the conjecture for gossip with a concrete oracle
// and scheme.
//
// The oracle roots a spanning tree anywhere and tells every node its
// parent port and child ports — a Θ(n log n)-bit oracle, like wakeup's,
// plus one extra port per node. The scheme is the classical
// convergecast/divergecast pair: leaves send their value up; internal
// nodes merge and forward; the root, once complete, floods the full set
// down. Exactly 2(n-1) messages.
//
// Unlike the paper's dissemination tasks, gossip messages carry value sets
// and are therefore not bounded-size; the paper's bounded-message caveat
// applies to broadcast and wakeup only.
package gossip

import (
	"fmt"
	"sort"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/graph"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/spantree"
)

// Oracle is the gossip oracle: parent and child ports of a spanning tree.
type Oracle struct {
	// Root picks the convergecast root; any node works.
	Root graph.NodeID
}

// Name implements oracle.Oracle.
func (o Oracle) Name() string { return "gossip-tree" }

// Advise implements oracle.Oracle. The source argument is ignored: gossip
// is symmetric.
func (o Oracle) Advise(g *graph.Graph, _ graph.NodeID) (sim.Advice, error) {
	tree, err := spantree.BFS(g, o.Root)
	if err != nil {
		return nil, err
	}
	width := oracle.FieldWidth(g.N())
	advice := make(sim.Advice, g.N())
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		var w bitstring.Writer
		w.AppendDoubled(uint64(width))
		if v == o.Root {
			w.WriteBit(true) // root marker
		} else {
			w.WriteBit(false)
			w.WriteFixed(uint64(tree.ParentPort[v]), width)
		}
		for _, c := range tree.Children(v) {
			w.WriteFixed(uint64(c.Port), width)
		}
		advice[v] = w.String()
	}
	return advice, nil
}

// Role is a node's decoded advice.
type Role struct {
	// IsRoot marks the convergecast root.
	IsRoot bool
	// ParentPort is the port toward the parent; -1 at the root.
	ParentPort int
	// ChildPorts lists the ports toward children.
	ChildPorts []int
}

// DecodeRole parses a gossip advice string.
func DecodeRole(s bitstring.String) (Role, error) {
	r := bitstring.NewReader(s)
	width64, err := r.ReadDoubled()
	if err != nil {
		return Role{}, fmt.Errorf("gossip: decoding header: %w", err)
	}
	width := int(width64)
	if width <= 0 || width > 62 {
		return Role{}, fmt.Errorf("gossip: invalid field width %d", width)
	}
	isRoot, err := r.ReadBit()
	if err != nil {
		return Role{}, fmt.Errorf("gossip: decoding root marker: %w", err)
	}
	role := Role{IsRoot: isRoot, ParentPort: -1}
	if !isRoot {
		p, err := r.ReadFixed(width)
		if err != nil {
			return Role{}, fmt.Errorf("gossip: decoding parent port: %w", err)
		}
		role.ParentPort = int(p)
	}
	if r.Remaining()%width != 0 {
		return Role{}, fmt.Errorf("gossip: %d trailing bits not divisible by width %d", r.Remaining(), width)
	}
	for r.Remaining() > 0 {
		p, err := r.ReadFixed(width)
		if err != nil {
			return Role{}, fmt.Errorf("gossip: decoding child port: %w", err)
		}
		role.ChildPorts = append(role.ChildPorts, int(p))
	}
	return role, nil
}

// Algorithm is the convergecast/divergecast gossip scheme.
type Algorithm struct{}

// Name implements scheme.Algorithm.
func (Algorithm) Name() string { return "gossip-tree" }

// NewNode implements scheme.Algorithm.
func (Algorithm) NewNode(info scheme.NodeInfo) scheme.Node {
	nd := &node{info: info}
	role, err := DecodeRole(info.Advice)
	if err != nil {
		nd.broken = true
		return nd
	}
	nd.role = role
	nd.collected = []int64{info.Label}
	return nd
}

// node implements the gossip automaton. Its value is its label (the
// natural distinct input each node holds).
type node struct {
	info      scheme.NodeInfo
	role      Role
	broken    bool
	collected []int64 // own value + values received from children
	pending   int     // children not yet heard from
	done      bool    // full set known
	full      []int64
}

// Values reports the final learned set; the sim engine exposes automata
// via Options.RetainNodes so tests and experiments can verify completion.
func (nd *node) Values() []int64 {
	out := append([]int64(nil), nd.full...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (nd *node) Init() []scheme.Send {
	if nd.broken {
		return nil
	}
	nd.pending = len(nd.role.ChildPorts)
	if nd.pending > 0 {
		return nil // wait for the subtree first
	}
	// A leaf starts the convergecast; a childless root is the whole tree.
	if nd.role.IsRoot {
		nd.done = true
		nd.full = append([]int64(nil), nd.collected...)
		return nil
	}
	return []scheme.Send{{
		Port: nd.role.ParentPort,
		Msg:  scheme.Message{Kind: scheme.KindUp, Values: nd.collected},
	}}
}

func (nd *node) Receive(msg scheme.Message, port int) []scheme.Send {
	if nd.broken {
		return nil
	}
	switch msg.Kind {
	case scheme.KindUp:
		return nd.receiveUp(msg, port)
	case scheme.KindDown:
		return nd.receiveDown(msg)
	default:
		return nil
	}
}

func (nd *node) receiveUp(msg scheme.Message, port int) []scheme.Send {
	if !nd.isChildPort(port) || nd.pending == 0 {
		return nil // not a tree child: ignore (robustness)
	}
	nd.collected = append(nd.collected, msg.Values...)
	nd.pending--
	if nd.pending > 0 {
		return nil
	}
	if !nd.role.IsRoot {
		return []scheme.Send{{
			Port: nd.role.ParentPort,
			Msg:  scheme.Message{Kind: scheme.KindUp, Values: nd.collected},
		}}
	}
	// Root: the set is complete; flood it down.
	nd.done = true
	nd.full = append([]int64(nil), nd.collected...)
	return nd.floodDown()
}

func (nd *node) receiveDown(msg scheme.Message) []scheme.Send {
	if nd.done {
		return nil
	}
	nd.done = true
	nd.full = append([]int64(nil), msg.Values...)
	return nd.floodDown()
}

func (nd *node) floodDown() []scheme.Send {
	sends := make([]scheme.Send, 0, len(nd.role.ChildPorts))
	for _, p := range nd.role.ChildPorts {
		if p < 0 || p >= nd.info.Degree {
			continue
		}
		sends = append(sends, scheme.Send{
			Port: p,
			Msg:  scheme.Message{Kind: scheme.KindDown, Values: nd.full},
		})
	}
	return sends
}

func (nd *node) isChildPort(port int) bool {
	for _, p := range nd.role.ChildPorts {
		if p == port {
			return true
		}
	}
	return false
}

// Run executes gossip on g and verifies completion: every node must end up
// knowing all n labels. It returns the run result and the verified flag.
func Run(g *graph.Graph, opts sim.Options) (*sim.Result, bool, error) {
	advice, err := Oracle{Root: 0}.Advise(g, 0)
	if err != nil {
		return nil, false, err
	}
	opts.RetainNodes = true
	res, err := sim.Run(g, 0, Algorithm{}, advice, opts)
	if err != nil {
		return nil, false, err
	}
	want := make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = g.Label(graph.NodeID(v))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, n := range res.Nodes {
		gn, ok := n.(*node)
		if !ok {
			return res, false, fmt.Errorf("gossip: unexpected automaton type %T", n)
		}
		got := gn.Values()
		if !equalInt64(got, want) {
			return res, false, nil
		}
	}
	return res, true, nil
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
