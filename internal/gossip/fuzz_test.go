package gossip

import (
	"testing"

	"oraclesize/internal/bitstring"
)

// FuzzDecodeRole: arbitrary advice either decodes to a structurally sane
// Role or errors — never panics, never yields negative child ports.
func FuzzDecodeRole(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{0b00111100, 0b10101010, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var w bitstring.Writer
		for _, b := range data {
			for i := 0; i < 8; i++ {
				w.WriteBit(b&(1<<uint(i)) != 0)
			}
		}
		role, err := DecodeRole(w.String())
		if err != nil {
			return
		}
		if role.IsRoot && role.ParentPort != -1 {
			t.Fatal("root with a parent port")
		}
		if !role.IsRoot && role.ParentPort < 0 {
			t.Fatal("non-root without a parent port")
		}
		for _, p := range role.ChildPorts {
			if p < 0 {
				t.Fatalf("negative child port %d", p)
			}
		}
	})
}
