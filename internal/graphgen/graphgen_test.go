package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oraclesize/internal/graph"
)

func TestPathCycleStar(t *testing.T) {
	tests := []struct {
		name       string
		g          *graph.Graph
		err        error
		wantN      int
		wantM      int
		wantDiam   int
		wantMaxDeg int
	}{}
	p, err := Path(6)
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, struct {
		name       string
		g          *graph.Graph
		err        error
		wantN      int
		wantM      int
		wantDiam   int
		wantMaxDeg int
	}{"P6", p, nil, 6, 5, 5, 2})
	c, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, struct {
		name       string
		g          *graph.Graph
		err        error
		wantN      int
		wantM      int
		wantDiam   int
		wantMaxDeg int
	}{"C6", c, nil, 6, 6, 3, 2})
	s, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, struct {
		name       string
		g          *graph.Graph
		err        error
		wantN      int
		wantM      int
		wantDiam   int
		wantMaxDeg int
	}{"S6", s, nil, 6, 5, 2, 5})
	for _, tc := range tests {
		if tc.g.N() != tc.wantN || tc.g.M() != tc.wantM {
			t.Errorf("%s: N=%d M=%d, want %d/%d", tc.name, tc.g.N(), tc.g.M(), tc.wantN, tc.wantM)
		}
		if d := tc.g.Diameter(); d != tc.wantDiam {
			t.Errorf("%s: diameter %d, want %d", tc.name, d, tc.wantDiam)
		}
		if d := tc.g.MaxDegree(); d != tc.wantMaxDeg {
			t.Errorf("%s: max degree %d, want %d", tc.name, d, tc.wantMaxDeg)
		}
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestGeneratorsRejectBadInput(t *testing.T) {
	if _, err := Path(0); err == nil {
		t.Error("Path(0) accepted")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) accepted")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) accepted")
	}
	if _, err := Grid(1, 1); err == nil {
		t.Error("Grid(1,1) accepted")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
	if _, err := Complete(1); err == nil {
		t.Error("Complete(1) accepted")
	}
	if _, err := RandomConnected(5, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Error("RandomConnected with m < n-1 accepted")
	}
	if _, err := RandomConnected(5, 11, rand.New(rand.NewSource(1))); err == nil {
		t.Error("RandomConnected with m > C(n,2) accepted")
	}
}

func TestDAryTree(t *testing.T) {
	g, err := DAryTree(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if d := g.Diameter(); d != 6 {
		t.Errorf("complete binary tree of 15 nodes: diameter %d, want 6", d)
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	wantM := 4*4 + 3*5 // horizontal + vertical
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	if d := g.Diameter(); d != 7 {
		t.Errorf("diameter %d, want 7", d)
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("diameter %d, want 4", d)
	}
	// Dimensional port labeling: port i at v leads to v ^ (1<<i), and the
	// reverse port is also i.
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			u, q := g.Neighbor(v, p)
			if int(u) != int(v)^(1<<uint(p)) {
				t.Fatalf("port %d at %d leads to %d", p, v, u)
			}
			if q != p {
				t.Fatalf("reverse port %d != %d", q, p)
			}
		}
	}
}

func TestCompleteCanonicalPorts(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13} {
		g, err := Complete(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n || g.M() != n*(n-1)/2 {
			t.Fatalf("K%d: N=%d M=%d", n, g.N(), g.M())
		}
		// port_i(j) = ((j-i) mod n) - 1 and the labeling must be proper.
		for i := 1; i <= n; i++ {
			v, ok := g.NodeByLabel(int64(i))
			if !ok {
				t.Fatalf("label %d missing", i)
			}
			if g.Degree(v) != n-1 {
				t.Fatalf("deg(%d) = %d", i, g.Degree(v))
			}
			for j := 1; j <= n; j++ {
				if i == j {
					continue
				}
				u, _ := g.NodeByLabel(int64(j))
				want := mod(j-i, n) - 1
				if got := g.PortTo(v, u); got != want {
					t.Errorf("K%d: port at %d toward %d = %d, want %d", n, i, j, got, want)
				}
			}
		}
	}
}

func TestAllCompleteEdges(t *testing.T) {
	edges := AllCompleteEdges(5)
	if len(edges) != 10 {
		t.Fatalf("len = %d", len(edges))
	}
	seen := make(map[LabelEdge]bool)
	for _, e := range edges {
		if e.U >= e.V || e.U < 1 || e.V > 5 {
			t.Errorf("bad edge %v", e)
		}
		if seen[e] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestRandomEdgeTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := RandomEdgeTuple(10, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := make(map[LabelEdge]bool)
	for _, e := range s {
		if seen[e.Canon()] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e.Canon()] = true
	}
	if _, err := RandomEdgeTuple(4, 7, rng); err == nil {
		t.Error("over-large tuple accepted")
	}
}

func TestSubdividedComplete(t *testing.T) {
	n := 8
	rng := rand.New(rand.NewSource(7))
	s, err := RandomEdgeTuple(n, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SubdividedComplete(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2*n {
		t.Fatalf("N = %d, want %d", g.N(), 2*n)
	}
	// Edge count: C(n,2) - n replaced + 2n new = C(n,2) + n.
	wantM := n*(n-1)/2 + n
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	if !g.Connected() {
		t.Error("G_{n,S} not connected")
	}
	// Hidden node w_i has label n+i, degree 2, port 0 to the smaller
	// endpoint and port 1 to the larger; attachment ports at u_i, v_i are
	// the original K*_n ports of the subdivided edge.
	for i, e := range s {
		e = e.Canon()
		w, ok := g.NodeByLabel(int64(n + i + 1))
		if !ok {
			t.Fatalf("hidden node %d missing", n+i+1)
		}
		if g.Degree(w) != 2 {
			t.Fatalf("deg(w_%d) = %d", i+1, g.Degree(w))
		}
		u0, q0 := g.Neighbor(w, 0)
		u1, q1 := g.Neighbor(w, 1)
		if g.Label(u0) != int64(e.U) || g.Label(u1) != int64(e.V) {
			t.Errorf("w_%d ports lead to labels %d,%d, want %d,%d",
				i+1, g.Label(u0), g.Label(u1), e.U, e.V)
		}
		if q0 != mod(e.V-e.U, n)-1 {
			t.Errorf("attachment port at u_%d = %d, want %d", i+1, q0, mod(e.V-e.U, n)-1)
		}
		if q1 != mod(e.U-e.V, n)-1 {
			t.Errorf("attachment port at v_%d = %d, want %d", i+1, q1, mod(e.U-e.V, n)-1)
		}
	}
	// Original nodes keep degree n-1 — the subdivision is invisible from
	// the port structure, which is the crux of the lower bound.
	for i := 1; i <= n; i++ {
		v, _ := g.NodeByLabel(int64(i))
		if g.Degree(v) != n-1 {
			t.Errorf("deg(label %d) = %d, want %d", i, g.Degree(v), n-1)
		}
	}
}

func TestSubdividedCompleteRejects(t *testing.T) {
	if _, err := SubdividedComplete(6, []LabelEdge{{1, 2}, {2, 1}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := SubdividedComplete(6, []LabelEdge{{1, 9}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := SubdividedComplete(2, nil); err == nil {
		t.Error("tiny n accepted")
	}
}

func TestCliqueGadget(t *testing.T) {
	n, k := 12, 4
	rng := rand.New(rand.NewSource(3))
	s, err := RandomEdgeTuple(n, n/k, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := RandomGadgetPairs(n/k, k, rng)
	g, err := CliqueGadget(n, k, s, c)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n+(n/k)*k {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("G_{n,S,C} not connected")
	}
	// Every clique node has degree k-1 (paper: "all nodes with labels larger
	// than n have degree k-1").
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if g.Label(v) > int64(n) {
			if g.Degree(v) != k-1 {
				t.Errorf("clique node label %d has degree %d, want %d", g.Label(v), g.Degree(v), k-1)
			}
		} else {
			if g.Degree(v) != n-1 {
				t.Errorf("original node label %d has degree %d, want %d", g.Label(v), g.Degree(v), n-1)
			}
		}
	}
	// The removed internal edge {a_i, b_i} must be absent and rewired.
	for i := 1; i <= n/k; i++ {
		pair := c[i-1]
		a, _ := g.NodeByLabel(int64(n + (i-1)*k + pair.A))
		bb, _ := g.NodeByLabel(int64(n + (i-1)*k + pair.B))
		if g.HasEdge(a, bb) {
			t.Errorf("gadget %d: removed clique edge still present", i)
		}
		e := s[i-1].Canon()
		u, _ := g.NodeByLabel(int64(e.U))
		v, _ := g.NodeByLabel(int64(e.V))
		if g.HasEdge(u, v) {
			t.Errorf("gadget %d: replaced K*_n edge still present", i)
		}
		if !g.HasEdge(u, a) || !g.HasEdge(v, bb) {
			t.Errorf("gadget %d: attachment edges missing", i)
		}
	}
}

func TestCliqueGadgetRejects(t *testing.T) {
	if _, err := CliqueGadget(12, 2, []LabelEdge{{1, 2}}, []GadgetPair{{1, 2}}); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := CliqueGadget(12, 4, []LabelEdge{{1, 2}}, nil); err == nil {
		t.Error("|S| != |C| accepted")
	}
	if _, err := CliqueGadget(12, 4, []LabelEdge{{1, 2}}, []GadgetPair{{3, 3}}); err == nil {
		t.Error("degenerate pair accepted")
	}
}

func TestRandomGadgetPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := RandomGadgetPairs(200, 5, rng)
	for _, p := range pairs {
		if p.A < 1 || p.B > 5 || p.A >= p.B {
			t.Fatalf("bad pair %v", p)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, m int }{{2, 1}, {10, 9}, {10, 20}, {30, 100}} {
		g, err := RandomConnected(tc.n, tc.m, rng)
		if err != nil {
			t.Fatalf("RandomConnected(%d,%d): %v", tc.n, tc.m, err)
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("got N=%d M=%d, want %d/%d", g.N(), g.M(), tc.n, tc.m)
		}
		if !g.Connected() {
			t.Errorf("RandomConnected(%d,%d) disconnected", tc.n, tc.m)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("invalid graph: %v", err)
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	g1, err := RandomConnected(20, 40, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomConnected(20, 40, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestShufflePortsPreservesAdjacency(t *testing.T) {
	base, err := Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ShufflePorts(base, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != base.N() || g.M() != base.M() {
		t.Fatalf("size changed: %d/%d vs %d/%d", g.N(), g.M(), base.N(), base.M())
	}
	for v := graph.NodeID(0); int(v) < base.N(); v++ {
		if g.Label(v) != base.Label(v) {
			t.Errorf("label of %d changed", v)
		}
		for p := 0; p < base.Degree(v); p++ {
			u, _ := base.Neighbor(v, p)
			if !g.HasEdge(v, u) {
				t.Errorf("edge {%d,%d} lost", v, u)
			}
		}
	}
}

func TestLollipopAndCaterpillar(t *testing.T) {
	l, err := Lollipop(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 9 || l.M() != 10+4 {
		t.Errorf("lollipop: N=%d M=%d", l.N(), l.M())
	}
	if !l.Connected() {
		t.Error("lollipop disconnected")
	}
	cat, err := Caterpillar(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.N() != 16 || cat.M() != 15 {
		t.Errorf("caterpillar: N=%d M=%d", cat.N(), cat.M())
	}
	if !cat.Connected() {
		t.Error("caterpillar disconnected")
	}
}

func TestFamiliesAllGenerateConnected(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for _, n := range []int{8, 33, 64} {
				g, err := f.Generate(n, rand.New(rand.NewSource(int64(n))))
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if g.N() < 2 {
					t.Fatalf("n=%d: graph too small (%d)", n, g.N())
				}
				if !g.Connected() {
					t.Fatalf("n=%d: disconnected", n)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			}
		})
	}
}

func TestFamilyByName(t *testing.T) {
	if _, err := FamilyByName("hypercube"); err != nil {
		t.Error(err)
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestSubdividedCompletePropertyRandom(t *testing.T) {
	f := func(seed int64, sizeSeed uint8) bool {
		n := int(sizeSeed%10) + 5
		rng := rand.New(rand.NewSource(seed))
		count := n // paper's case |S| = n; requires C(n,2) >= n, true for n >= 3
		s, err := RandomEdgeTuple(n, count, rng)
		if err != nil {
			return false
		}
		g, err := SubdividedComplete(n, s)
		if err != nil {
			return false
		}
		return g.Connected() && g.N() == 2*n && g.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
