package graphgen

import (
	"math/rand"
	"testing"

	"oraclesize/internal/graph"
)

func TestCompleteBipartite(t *testing.T) {
	g, err := CompleteBipartite(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K_{3,4}: N=%d M=%d", g.N(), g.M())
	}
	for v := graph.NodeID(0); v < 3; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("left node %d degree %d", v, g.Degree(v))
		}
	}
	for v := graph.NodeID(3); v < 7; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("right node %d degree %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("diameter %d", d)
	}
	if _, err := CompleteBipartite(0, 4); err == nil {
		t.Error("K_{0,4} accepted")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus: N=%d M=%d", g.N(), g.M())
	}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("diameter %d, want 4", d)
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("2-row torus accepted (parallel edges)")
	}
}

func TestWheel(t *testing.T) {
	g, err := Wheel(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 14 {
		t.Fatalf("W8: N=%d M=%d", g.N(), g.M())
	}
	hub := graph.NodeID(7)
	if g.Degree(hub) != 7 {
		t.Errorf("hub degree %d", g.Degree(hub))
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("diameter %d", d)
	}
	if _, err := Wheel(3); err == nil {
		t.Error("W3 accepted")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, d int }{{10, 3}, {16, 4}, {30, 3}, {20, 6}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n {
			t.Fatalf("N = %d", g.N())
		}
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("node %d degree %d, want %d", v, g.Degree(v), tc.d)
			}
		}
		if !g.Connected() {
			t.Fatal("disconnected")
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestBroom(t *testing.T) {
	g, err := Broom(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || g.M() != 11 {
		t.Fatalf("broom: N=%d M=%d", g.N(), g.M())
	}
	// Longest path: a bristle to the far end of the handle.
	if d := g.Diameter(); d != 5 {
		t.Errorf("diameter %d, want 5", d)
	}
}

func TestBinomialTree(t *testing.T) {
	g, err := BinomialTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 15 {
		t.Fatalf("B4: N=%d M=%d", g.N(), g.M())
	}
	// Root (node 0) of B_k has degree k.
	if g.Degree(0) != 4 {
		t.Errorf("root degree %d", g.Degree(0))
	}
	if !g.Connected() {
		t.Error("disconnected")
	}
	if _, err := BinomialTree(0); err == nil {
		t.Error("B0 accepted")
	}
}

func TestShuffleLabels(t *testing.T) {
	g, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ShuffleLabels(g, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatal("size changed")
	}
	// Port structure identical.
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			u1, q1 := g.Neighbor(v, p)
			u2, q2 := s.Neighbor(v, p)
			if u1 != u2 || q1 != q2 {
				t.Fatalf("adjacency changed at %d:%d", v, p)
			}
		}
	}
	// Same label multiset.
	seen := make(map[int64]bool)
	for v := graph.NodeID(0); int(v) < s.N(); v++ {
		l := s.Label(v)
		if l < 1 || l > int64(s.N()) || seen[l] {
			t.Fatalf("bad label %d", l)
		}
		seen[l] = true
	}
}
