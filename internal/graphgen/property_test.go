package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oraclesize/internal/graph"
)

func TestShufflePortsPreservesDegreeSequenceProperty(t *testing.T) {
	f := func(seed int64, nSeed, mSeed uint8) bool {
		n := int(nSeed%40) + 4
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mSeed)%(maxM-(n-1)+1)
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomConnected(n, m, rng)
		if err != nil {
			return false
		}
		s, err := ShufflePorts(g, rng)
		if err != nil {
			return false
		}
		if s.N() != g.N() || s.M() != g.M() {
			return false
		}
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if s.Degree(v) != g.Degree(v) {
				return false
			}
		}
		return s.Connected() && s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCliqueGadgetInvariantsProperty(t *testing.T) {
	f := func(seed int64, kSeed uint8) bool {
		k := int(kSeed%4) + 3 // k in 3..6
		n := 4 * k * 2        // 4k | n
		rng := rand.New(rand.NewSource(seed))
		s, err := RandomEdgeTuple(n, n/k, rng)
		if err != nil {
			return false
		}
		g, err := CliqueGadget(n, k, s, RandomGadgetPairs(n/k, k, rng))
		if err != nil {
			return false
		}
		if g.N() != n+(n/k)*k || !g.Connected() {
			return false
		}
		// Paper: all nodes labeled > n have degree k-1.
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if g.Label(v) > int64(n) && g.Degree(v) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompletePortBijectionProperty(t *testing.T) {
	f := func(nSeed uint8) bool {
		n := int(nSeed%30) + 2
		g, err := Complete(n)
		if err != nil {
			return false
		}
		// Each node's ports hit each neighbor exactly once.
		for v := graph.NodeID(0); int(v) < n; v++ {
			seen := make(map[graph.NodeID]bool, n-1)
			for p := 0; p < g.Degree(v); p++ {
				u, _ := g.Neighbor(v, p)
				if u == v || seen[u] {
					return false
				}
				seen[u] = true
			}
			if len(seen) != n-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSubdividedDegreesProperty(t *testing.T) {
	// Subdivision is invisible from the original nodes' port structure:
	// degrees stay n-1 and hidden nodes have degree exactly 2.
	f := func(seed int64, nSeed, cSeed uint8) bool {
		n := int(nSeed%12) + 5
		c := int(cSeed%3) + 1
		hidden := c * n
		if hidden > n*(n-1)/2 {
			return true // vacuous
		}
		rng := rand.New(rand.NewSource(seed))
		s, err := RandomEdgeTuple(n, hidden, rng)
		if err != nil {
			return false
		}
		g, err := SubdividedComplete(n, s)
		if err != nil {
			return false
		}
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if g.Label(v) <= int64(n) {
				if g.Degree(v) != n-1 {
					return false
				}
			} else if g.Degree(v) != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
