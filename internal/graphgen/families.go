package graphgen

import (
	"fmt"
	"math"
	"math/rand"

	"oraclesize/internal/graph"
)

// Family is a named parametric graph family used to sweep experiments over
// topologies. Generate receives a requested size and a seeded source of
// randomness; it may round the size to the nearest feasible value (e.g.
// powers of two for hypercubes) but must return a connected graph of at
// least two nodes.
type Family struct {
	Name     string
	Generate func(n int, rng *rand.Rand) (*graph.Graph, error)
}

// Families returns the standard battery of families used by experiments
// E1, E3, E5 and E8.
func Families() []Family {
	return []Family{
		{Name: "path", Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) { return Path(n) }},
		{Name: "cycle", Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) { return Cycle(maxInt(n, 3)) }},
		{Name: "star", Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) { return Star(n) }},
		{Name: "binary-tree", Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) { return DAryTree(n, 2) }},
		{
			Name: "grid",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				side := int(math.Round(math.Sqrt(float64(n))))
				if side < 2 {
					side = 2
				}
				return Grid(side, side)
			},
		},
		{
			Name: "hypercube",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				d := 1
				for (1 << uint(d+1)) <= n {
					d++
				}
				return Hypercube(d)
			},
		},
		{
			Name: "random-sparse",
			Generate: func(n int, rng *rand.Rand) (*graph.Graph, error) {
				if n < 2 {
					return nil, fmt.Errorf("graphgen: need n >= 2, got %d", n)
				}
				m := minInt(2*n, n*(n-1)/2)
				return RandomConnected(n, m, rng)
			},
		},
		{
			Name: "random-dense",
			Generate: func(n int, rng *rand.Rand) (*graph.Graph, error) {
				if n < 2 {
					return nil, fmt.Errorf("graphgen: need n >= 2, got %d", n)
				}
				m := n * (n - 1) / 4
				if m < n-1 {
					m = n - 1
				}
				return RandomConnected(n, m, rng)
			},
		},
		{
			Name: "complete",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				return Complete(maxInt(n, 2))
			},
		},
		{
			Name: "torus",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				side := int(math.Round(math.Sqrt(float64(n))))
				if side < 3 {
					side = 3
				}
				return Torus(side, side)
			},
		},
		{
			Name: "wheel",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				return Wheel(maxInt(n, 4))
			},
		},
		{
			Name: "complete-bipartite",
			Generate: func(n int, _ *rand.Rand) (*graph.Graph, error) {
				half := maxInt(n/2, 1)
				return CompleteBipartite(half, n-half)
			},
		},
		{
			Name: "random-regular",
			Generate: func(n int, rng *rand.Rand) (*graph.Graph, error) {
				d := 4
				if n*d%2 != 0 {
					n++
				}
				if d >= n {
					d = n - 1
					if n*d%2 != 0 {
						d--
					}
				}
				return RandomRegular(maxInt(n, 6), d, rng)
			},
		},
		{
			Name: "subdivided-complete",
			Generate: func(n int, rng *rand.Rand) (*graph.Graph, error) {
				// G_{m,S} has 2m nodes; pick m = n/2.
				m := maxInt(n/2, 4)
				s, err := RandomEdgeTuple(m, m, rng)
				if err != nil {
					return nil, err
				}
				return SubdividedComplete(m, s)
			},
		},
	}
}

// FamilyByName returns the named family.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("graphgen: unknown family %q", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
