// Package graphgen builds the graph families used by the experiments:
// standard topologies (paths, cycles, trees, grids, hypercubes, random
// connected graphs) and the two families at the heart of the paper's lower
// bounds — the subdivided complete graphs G_{n,S} of Section 2 and the
// clique-gadget graphs G_{n,S,C} of Section 3.
//
// All generators are deterministic given their inputs; randomized ones take
// an explicit *rand.Rand.
package graphgen

import (
	"fmt"
	"math/rand"
	"sort"

	"oraclesize/internal/graph"
)

// Path returns the path on n >= 1 nodes, labeled 1..n.
func Path(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graphgen: path needs n >= 1, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Graph()
}

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graphgen: cycle needs n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Graph()
}

// Star returns the star with one center (node 0) and n-1 leaves.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graphgen: star needs n >= 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdgeAuto(0, graph.NodeID(i))
	}
	return b.Graph()
}

// DAryTree returns the complete-as-possible d-ary tree on n nodes, filled in
// BFS order (node i's parent is node (i-1)/d).
func DAryTree(n, d int) (*graph.Graph, error) {
	if n < 1 || d < 1 {
		return nil, fmt.Errorf("graphgen: d-ary tree needs n >= 1, d >= 1, got n=%d d=%d", n, d)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdgeAuto(graph.NodeID((i-1)/d), graph.NodeID(i))
	}
	return b.Graph()
}

// Grid returns the rows x cols grid.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graphgen: grid needs at least 2 nodes, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdgeAuto(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdgeAuto(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube (2^d nodes); the port at a
// node for dimension i is i, a natural dimensional port labeling.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("graphgen: hypercube dimension %d out of range [1,20]", d)
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			u := v ^ (1 << uint(i))
			if v < u {
				b.AddEdge(graph.NodeID(v), i, graph.NodeID(u), i)
			}
		}
	}
	return b.Graph()
}

// Complete returns K*_n: the complete graph on labels 1..n with the
// canonical rotational port labeling, port_i(j) = ((j - i) mod n) - 1.
//
// The paper defines the port at i toward j as (i-j) mod (n-1); taken
// literally that assignment collides (see DESIGN.md §2.1), so this package
// uses the standard rotational labeling, which is a proper assignment with
// the same structural role.
func Complete(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graphgen: complete graph needs n >= 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			b.AddEdge(graph.NodeID(i-1), completePort(i, j, n), graph.NodeID(j-1), completePort(j, i, n))
		}
	}
	return b.Graph()
}

// completePort returns the canonical K*_n port at label i toward label j.
func completePort(i, j, n int) int {
	return mod(j-i, n) - 1
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// LabelEdge is an edge of K*_n named by its endpoint labels, with U < V.
type LabelEdge struct {
	U, V int
}

// Canon returns the edge with endpoints ordered.
func (e LabelEdge) Canon() LabelEdge {
	if e.U > e.V {
		return LabelEdge{U: e.V, V: e.U}
	}
	return e
}

// AllCompleteEdges enumerates the C(n,2) edges of K*_n in lexicographic
// order.
func AllCompleteEdges(n int) []LabelEdge {
	edges := make([]LabelEdge, 0, n*(n-1)/2)
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			edges = append(edges, LabelEdge{U: i, V: j})
		}
	}
	return edges
}

// RandomEdgeTuple draws count distinct edges of K*_n uniformly at random,
// in tuple order (the order matters: in G_{n,S} the i-th edge hides the node
// labeled n+i).
func RandomEdgeTuple(n, count int, rng *rand.Rand) ([]LabelEdge, error) {
	total := n * (n - 1) / 2
	if count > total {
		return nil, fmt.Errorf("graphgen: cannot pick %d distinct edges from K_%d (%d edges)", count, n, total)
	}
	all := AllCompleteEdges(n)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:count], nil
}

// SubdividedComplete builds the graph G_{n,S} of Section 2: K*_n in which,
// for each i, a new node w_i labeled n+i is inserted in the middle of edge
// s[i-1] = {u_i, v_i}. The ports at u_i and v_i are unchanged; at w_i, port 0
// leads to the smaller-labeled endpoint and port 1 to the larger. The paper
// takes |S| = n, but any tuple of distinct edges is accepted (the remark
// after Theorem 2.2 uses |S| = c·n).
func SubdividedComplete(n int, s []LabelEdge) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graphgen: G_{n,S} needs n >= 3, got %d", n)
	}
	hidden := make(map[LabelEdge]int, len(s)) // canonical edge -> index in S (1-based)
	for i, e := range s {
		e = e.Canon()
		if e.U < 1 || e.V > n || e.U == e.V {
			return nil, fmt.Errorf("graphgen: S[%d] = {%d,%d} is not an edge of K_%d", i, e.U, e.V, n)
		}
		if _, dup := hidden[e]; dup {
			return nil, fmt.Errorf("graphgen: S[%d] = {%d,%d} repeats an earlier edge", i, e.U, e.V)
		}
		hidden[e] = i + 1
	}
	b := graph.NewBuilder(n + len(s))
	for i := 0; i < len(s); i++ {
		b.SetLabel(graph.NodeID(n+i), int64(n+i+1))
	}
	for _, e := range AllCompleteEdges(n) {
		pu := completePort(e.U, e.V, n)
		pv := completePort(e.V, e.U, n)
		u := graph.NodeID(e.U - 1)
		v := graph.NodeID(e.V - 1)
		if idx, sub := hidden[e]; sub {
			w := graph.NodeID(n + idx - 1)
			b.AddEdge(u, pu, w, 0)
			b.AddEdge(v, pv, w, 1)
		} else {
			b.AddEdge(u, pu, v, pv)
		}
	}
	return b.Graph()
}

// GadgetPair is one entry of the paper's set C: the clique edge {a,b}
// (1 <= a < b <= k, in clique-local labels) removed from H_i and rewired to
// the outside.
type GadgetPair struct {
	A, B int
}

// RandomGadgetPairs draws count independent uniformly random pairs (a,b)
// with 1 <= a < b <= k.
func RandomGadgetPairs(count, k int, rng *rand.Rand) []GadgetPair {
	pairs := make([]GadgetPair, count)
	for i := range pairs {
		a := rng.Intn(k) + 1
		bv := rng.Intn(k-1) + 1
		if bv >= a {
			bv++
		}
		if a > bv {
			a, bv = bv, a
		}
		pairs[i] = GadgetPair{A: a, B: bv}
	}
	return pairs
}

// CliqueGadget builds the graph G_{n,S,C} of Section 3: K*_n in which each
// edge e_i = s[i-1] = {u_i, v_i} (labels u_i < v_i) is replaced by a k-node
// clique H_i. Clique H_i occupies labels n+(i-1)k+1 .. n+ik; its internal
// edge f_i = {a_i, b_i} = c[i-1] (local labels) is removed, and a_i is
// connected to u_i while b_i is connected to v_i, inheriting the port
// numbers of the replaced edges on both sides. Every clique node has degree
// k-1 and original nodes keep degree n-1, exactly as in the paper.
func CliqueGadget(n, k int, s []LabelEdge, c []GadgetPair) (*graph.Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("graphgen: clique gadget needs k >= 3, got %d", k)
	}
	if len(s) != len(c) {
		return nil, fmt.Errorf("graphgen: |S| = %d but |C| = %d", len(s), len(c))
	}
	replaced := make(map[LabelEdge]int, len(s)) // canonical edge -> index (1-based)
	for i, e := range s {
		e = e.Canon()
		if e.U < 1 || e.V > n || e.U == e.V {
			return nil, fmt.Errorf("graphgen: S[%d] = {%d,%d} is not an edge of K_%d", i, e.U, e.V, n)
		}
		if _, dup := replaced[e]; dup {
			return nil, fmt.Errorf("graphgen: S[%d] = {%d,%d} repeats an earlier edge", i, e.U, e.V)
		}
		replaced[e] = i + 1
	}
	for i, p := range c {
		if p.A < 1 || p.B > k || p.A >= p.B {
			return nil, fmt.Errorf("graphgen: C[%d] = (%d,%d) is not a pair with 1 <= a < b <= %d", i, p.A, p.B, k)
		}
	}

	total := n + len(s)*k
	b := graph.NewBuilder(total)
	// cliqueNode maps (gadget index 1-based, local label 1..k) to the node.
	cliqueNode := func(i, a int) graph.NodeID { return graph.NodeID(n + (i-1)*k + a - 1) }
	for i := 1; i <= len(s); i++ {
		for a := 1; a <= k; a++ {
			b.SetLabel(cliqueNode(i, a), int64(n+(i-1)*k+a))
		}
	}
	// localPort is the rotational port labeling inside a k-clique; the paper
	// writes (a-b) mod (k-1) which has the same collision issue as for K*_n,
	// so the canonical rotational labeling is used (DESIGN.md §2.1).
	localPort := func(a, bb int) int { return mod(bb-a, k) - 1 }

	// Edges of K*_n, with replaced ones expanded into gadget attachments.
	for _, e := range AllCompleteEdges(n) {
		pu := completePort(e.U, e.V, n)
		pv := completePort(e.V, e.U, n)
		u := graph.NodeID(e.U - 1)
		v := graph.NodeID(e.V - 1)
		idx, sub := replaced[e]
		if !sub {
			b.AddEdge(u, pu, v, pv)
			continue
		}
		pair := c[idx-1]
		// a_i attaches to the smaller-labeled endpoint u, b_i to v; the
		// attachment edges inherit the ports of e_i at u, v and of f_i at
		// a_i, b_i.
		aNode := cliqueNode(idx, pair.A)
		bNode := cliqueNode(idx, pair.B)
		b.AddEdge(u, pu, aNode, localPort(pair.A, pair.B))
		b.AddEdge(v, pv, bNode, localPort(pair.B, pair.A))
	}
	// Internal clique edges, minus the removed f_i.
	for i := 1; i <= len(s); i++ {
		pair := c[i-1]
		for a := 1; a <= k; a++ {
			for bb := a + 1; bb <= k; bb++ {
				if a == pair.A && bb == pair.B {
					continue
				}
				b.AddEdge(cliqueNode(i, a), localPort(a, bb), cliqueNode(i, bb), localPort(bb, a))
			}
		}
	}
	return b.Graph()
}

// RandomConnected returns a connected graph on n nodes with m edges,
// n-1 <= m <= C(n,2): a uniform random recursive tree plus m-(n-1) random
// extra edges. Port numbers are assigned in insertion order and then
// shuffled per node, so they carry no structural hints.
func RandomConnected(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graphgen: random connected graph needs n >= 2, got %d", n)
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		return nil, fmt.Errorf("graphgen: m = %d out of range [%d, %d]", m, n-1, maxM)
	}
	type pair struct{ u, v graph.NodeID }
	used := make(map[pair]bool, m)
	addPair := func(u, v graph.NodeID) bool {
		if u > v {
			u, v = v, u
		}
		if u == v || used[pair{u, v}] {
			return false
		}
		used[pair{u, v}] = true
		return true
	}
	// Random recursive tree.
	for i := 1; i < n; i++ {
		addPair(graph.NodeID(rng.Intn(i)), graph.NodeID(i))
	}
	for len(used) < m {
		addPair(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	// Deterministic edge order from the map would be random anyway; collect
	// and shuffle for clean seeding semantics.
	edges := make([]pair, 0, m)
	for p := range used {
		edges = append(edges, p)
	}
	// Map iteration order is nondeterministic; impose one before shuffling
	// so identical seeds give identical graphs.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdgeAuto(e.u, e.v)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, err
	}
	return ShufflePorts(g, rng)
}

// ShufflePorts returns a copy of g in which every node's port numbering is
// independently permuted uniformly at random. Labels and adjacency are
// preserved; only the local port-to-neighbor maps change.
func ShufflePorts(g *graph.Graph, rng *rand.Rand) (*graph.Graph, error) {
	n := g.N()
	perm := make([][]int, n) // perm[v][oldPort] = newPort
	for v := 0; v < n; v++ {
		perm[v] = rng.Perm(g.Degree(graph.NodeID(v)))
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.NodeID(v), g.Label(graph.NodeID(v)))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, perm[e.U][e.PU], e.V, perm[e.V][e.PV])
	}
	return b.Graph()
}

// Lollipop returns a clique on cliqueSize nodes with a path of pathLen extra
// nodes attached to clique node 0 — a classic worst case mixing dense and
// sparse regions.
func Lollipop(cliqueSize, pathLen int) (*graph.Graph, error) {
	if cliqueSize < 3 || pathLen < 1 {
		return nil, fmt.Errorf("graphgen: lollipop needs cliqueSize >= 3 and pathLen >= 1, got %d, %d", cliqueSize, pathLen)
	}
	n := cliqueSize + pathLen
	b := graph.NewBuilder(n)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(j))
		}
	}
	b.AddEdgeAuto(0, graph.NodeID(cliqueSize))
	for i := cliqueSize; i < n-1; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Graph()
}

// Caterpillar returns a path of spineLen nodes with legsPerNode leaves
// hanging off each spine node.
func Caterpillar(spineLen, legsPerNode int) (*graph.Graph, error) {
	if spineLen < 1 || legsPerNode < 0 {
		return nil, fmt.Errorf("graphgen: caterpillar needs spineLen >= 1, legs >= 0, got %d, %d", spineLen, legsPerNode)
	}
	n := spineLen * (1 + legsPerNode)
	if n < 2 {
		return nil, fmt.Errorf("graphgen: caterpillar with %d nodes is too small", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < spineLen-1; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(i+1))
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerNode; l++ {
			b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(next))
			next++
		}
	}
	return b.Graph()
}
