package graphgen

import (
	"fmt"
	"math/rand"

	"oraclesize/internal/graph"
)

// CompleteBipartite returns K_{a,b}: parts of a and b nodes, every
// cross-pair connected.
func CompleteBipartite(a, b int) (*graph.Graph, error) {
	if a < 1 || b < 1 || a+b < 2 {
		return nil, fmt.Errorf("graphgen: K_{%d,%d} is degenerate", a, b)
	}
	bl := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bl.AddEdgeAuto(graph.NodeID(i), graph.NodeID(a+j))
		}
	}
	return bl.Graph()
}

// Torus returns the rows x cols wraparound grid (each at least 3 to avoid
// parallel edges).
func Torus(rows, cols int) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graphgen: torus needs sides >= 3, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdgeAuto(id(r, c), id(r, (c+1)%cols))
			b.AddEdgeAuto(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Graph()
}

// Wheel returns a cycle of n-1 nodes plus a hub adjacent to all of them.
func Wheel(n int) (*graph.Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("graphgen: wheel needs n >= 4, got %d", n)
	}
	b := graph.NewBuilder(n)
	rim := n - 1
	for i := 0; i < rim; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID((i+1)%rim))
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(rim))
	}
	return b.Graph()
}

// RandomRegular returns a connected random d-regular graph on n nodes via
// the pairing model with rejection (n·d must be even, d < n). It retries
// until the multigraph is simple and connected, so very small parameter
// combinations may take a few attempts.
func RandomRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 2 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("graphgen: no %d-regular graph on %d nodes", d, n)
	}
	// The pairing model succeeds with probability ~exp(-(d²-1)/4), so the
	// attempt budget must grow with d²; 50000 covers d <= 7 comfortably.
	const maxAttempts = 50000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.Connected() {
			return ShufflePorts(g, rng)
		}
	}
	return nil, fmt.Errorf("graphgen: failed to sample a connected %d-regular graph on %d nodes", d, n)
}

// tryPairing runs one round of the configuration model: stubs are paired
// uniformly; the attempt fails on self-loops or parallel edges.
func tryPairing(n, d int, rng *rand.Rand) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair struct{ u, v int }
	seen := make(map[pair]bool, n*d/2)
	b := graph.NewBuilder(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return nil, false
		}
		seen[pair{u, v}] = true
		b.AddEdgeAuto(graph.NodeID(u), graph.NodeID(v))
	}
	g, err := b.Graph()
	if err != nil {
		return nil, false
	}
	return g, true
}

// ShuffleLabels returns a copy of g whose node labels are a uniformly
// random permutation of the originals. Port structure is unchanged.
// Label-dependent protocols (e.g. radio round-robin) behave very
// differently on sorted vs shuffled labels.
func ShuffleLabels(g *graph.Graph, rng *rand.Rand) (*graph.Graph, error) {
	n := g.N()
	labels := make([]int64, n)
	for v := 0; v < n; v++ {
		labels[v] = g.Label(graph.NodeID(v))
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.NodeID(v), labels[v])
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.PU, e.V, e.PV)
	}
	return b.Graph()
}

// Broom returns a path of handleLen nodes ending in a star of bristles
// leaves — a worst case for eccentricity-sensitive schemes.
func Broom(handleLen, bristles int) (*graph.Graph, error) {
	if handleLen < 1 || bristles < 1 {
		return nil, fmt.Errorf("graphgen: broom needs handleLen >= 1 and bristles >= 1")
	}
	n := handleLen + bristles
	b := graph.NewBuilder(n)
	for i := 0; i < handleLen-1; i++ {
		b.AddEdgeAuto(graph.NodeID(i), graph.NodeID(i+1))
	}
	tip := graph.NodeID(handleLen - 1)
	for i := 0; i < bristles; i++ {
		b.AddEdgeAuto(tip, graph.NodeID(handleLen+i))
	}
	return b.Graph()
}

// BinomialTree returns the binomial tree B_k on 2^k nodes (the recursive
// doubling communication pattern).
func BinomialTree(k int) (*graph.Graph, error) {
	if k < 0 || k > 20 {
		return nil, fmt.Errorf("graphgen: binomial tree order %d out of range [0,20]", k)
	}
	n := 1 << uint(k)
	if n < 2 {
		return nil, fmt.Errorf("graphgen: binomial tree B_0 has a single node")
	}
	b := graph.NewBuilder(n)
	// Node v's parent clears v's lowest set bit.
	for v := 1; v < n; v++ {
		parent := v & (v - 1)
		b.AddEdgeAuto(graph.NodeID(parent), graph.NodeID(v))
	}
	return b.Graph()
}
