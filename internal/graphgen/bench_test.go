package graphgen

import (
	"math/rand"
	"testing"
)

func BenchmarkComplete(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Complete(256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomConnected(1024, 4096, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubdividedComplete(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, err := RandomEdgeTuple(128, 128, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SubdividedComplete(128, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliqueGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, err := RandomEdgeTuple(128, 32, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := RandomGadgetPairs(32, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CliqueGadget(128, 4, s, c); err != nil {
			b.Fatal(err)
		}
	}
}
