package oraclesize

// Cross-module integration tests: randomized end-to-end properties over
// random graphs, schedulers, and both engines. These are the repository's
// strongest guard: each run exercises generator -> oracle -> scheme ->
// engine -> verdict in one pass.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oraclesize/internal/bitstring"
	"oraclesize/internal/broadcast"
	"oraclesize/internal/gossip"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/wakeup"
)

func codecByName(name string) (bitstring.Codec, error) {
	return bitstring.CodecByName(name)
}

// randomCase derives a reproducible (graph, source, seed) triple from quick
// inputs.
func randomCase(t *testing.T, seed int64, sizeSeed, denseSeed uint8) (*Graph, NodeID) {
	t.Helper()
	n := int(sizeSeed%60) + 4
	maxM := n * (n - 1) / 2
	span := maxM - (n - 1)
	m := n - 1
	if span > 0 {
		m += int(denseSeed) % (span + 1)
	}
	g, err := graphgen.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	return g, NodeID(int(seed%int64(n)+int64(n)) % n)
}

func TestPropertyWakeupExact(t *testing.T) {
	f := func(seed int64, sizeSeed, denseSeed uint8) bool {
		g, src := randomCase(t, seed, sizeSeed, denseSeed)
		advice, err := wakeup.Oracle{}.Advise(g, src)
		if err != nil {
			return false
		}
		res, err := sim.Run(g, src, wakeup.Algorithm{}, advice, sim.Options{EnforceWakeup: true})
		if err != nil {
			return false
		}
		return res.AllInformed && res.Messages == g.N()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBroadcastBounds(t *testing.T) {
	f := func(seed int64, sizeSeed, denseSeed uint8, schedSeed uint8) bool {
		g, src := randomCase(t, seed, sizeSeed, denseSeed)
		advice, err := broadcast.Oracle{}.Advise(g, src)
		if err != nil {
			return false
		}
		var sched sim.Scheduler
		switch schedSeed % 4 {
		case 0:
			sched = sim.NewFIFO()
		case 1:
			sched = sim.NewLIFO()
		case 2:
			sched = sim.NewRandom(seed)
		default:
			sched = sim.NewDelay(seed, 8)
		}
		res, err := sim.Run(g, src, broadcast.Algorithm{}, advice, sim.Options{Scheduler: sched})
		if err != nil {
			return false
		}
		n := g.N()
		return res.AllInformed &&
			res.Messages <= 3*(n-1) &&
			res.ByKind[scheme.KindM] <= 2*(n-1) &&
			res.ByKind[scheme.KindHello] <= n-1 &&
			advice.SizeBits() <= 10*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGossipExact(t *testing.T) {
	f := func(seed int64, sizeSeed, denseSeed uint8) bool {
		g, _ := randomCase(t, seed, sizeSeed, denseSeed)
		res, verified, err := gossip.Run(g, sim.Options{})
		if err != nil {
			return false
		}
		return verified && res.Messages == 2*(g.N()-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertySeparationAlwaysHolds(t *testing.T) {
	// On every random graph with n >= 16, the wakeup oracle costs more
	// bits than the broadcast oracle (the separation is pointwise at these
	// sizes, not just asymptotic).
	f := func(seed int64, denseSeed uint8) bool {
		n := 16 + int(denseSeed%64)
		g, err := graphgen.RandomConnected(n, 3*n/2, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		w, err := wakeup.Oracle{}.Advise(g, 0)
		if err != nil {
			return false
		}
		b, err := broadcast.Oracle{}.Advise(g, 0)
		if err != nil {
			return false
		}
		return w.SizeBits() > b.SizeBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnginesAgreeOnDeterministicSchemes(t *testing.T) {
	// Wakeup's message count is schedule-invariant: the event-queue engine
	// (any scheduler) and the goroutine engine must agree exactly.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 16 + rng.Intn(60)
		g, err := graphgen.RandomConnected(n, 2*n, rng)
		if err != nil {
			t.Fatal(err)
		}
		advice, err := wakeup.Oracle{}.Advise(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := -1
		for name, factory := range sim.Schedulers(int64(trial)) {
			res, err := sim.Run(g, 0, wakeup.Algorithm{}, advice, sim.Options{Scheduler: factory()})
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = res.Messages
			} else if res.Messages != want {
				t.Fatalf("trial %d: scheduler %s got %d messages, others %d", trial, name, res.Messages, want)
			}
		}
		conc, err := sim.RunConcurrent(g, 0, wakeup.Algorithm{}, advice, 0)
		if err != nil {
			t.Fatal(err)
		}
		if conc.Messages != want {
			t.Fatalf("trial %d: goroutine engine got %d messages, event queue %d", trial, conc.Messages, want)
		}
	}
}

func TestAllCodecsInteroperateEndToEnd(t *testing.T) {
	g, err := RandomNetwork(60, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"doubled", "gamma", "delta", "unary", "rice2"} {
		codec, err := codecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		advice, err := broadcast.Oracle{Codec: &codec}.Advise(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := sim.Run(g, 0, broadcast.Algorithm{Codec: &codec}, advice, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.AllInformed || res.Messages > 3*(g.N()-1) {
			t.Errorf("%s: complete=%v messages=%d", name, res.AllInformed, res.Messages)
		}
	}
}
