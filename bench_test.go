package oraclesize

// One benchmark per experiment in DESIGN.md's per-experiment index. Each
// bench regenerates the corresponding table (in Quick mode so -bench runs
// stay tractable); `go run ./cmd/benchtables` prints the full-size tables
// recorded in EXPERIMENTS.md.

import (
	"testing"

	"oraclesize/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE1WakeupUpper regenerates E1 (Thm 2.1): wakeup oracle size and
// exact n-1 message count across families.
func BenchmarkE1WakeupUpper(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2aAdversaryGame regenerates E2a (Lemma 2.1): explicit adversary
// games on enumerated instance families.
func BenchmarkE2aAdversaryGame(b *testing.B) { benchExperiment(b, "E2a") }

// BenchmarkE2bWakeupLowerBound regenerates E2b (Thm 2.2): exact and
// analytic forced-message bounds for wakeup.
func BenchmarkE2bWakeupLowerBound(b *testing.B) { benchExperiment(b, "E2b") }

// BenchmarkE2cWakeupReduction regenerates E2c (Thm 2.2's reduction): the
// worst-case wakeup message count over enumerated G_{n,S} families.
func BenchmarkE2cWakeupReduction(b *testing.B) { benchExperiment(b, "E2c") }

// BenchmarkE3BroadcastUpper regenerates E3 (Thm 3.1, Claims 3.1/3.2): light
// tree contribution, O(n) oracle, Scheme B message bounds.
func BenchmarkE3BroadcastUpper(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4aBudgetedBroadcast regenerates E4a (Thm 3.2, empirical):
// message blow-up under restricted advice budgets on G_{n,S,C}.
func BenchmarkE4aBudgetedBroadcast(b *testing.B) { benchExperiment(b, "E4a") }

// BenchmarkE4bBroadcastLowerBound regenerates E4b (Thm 3.2/Claim 3.3):
// forced messages vs the n(k-1)/8 threshold.
func BenchmarkE4bBroadcastLowerBound(b *testing.B) { benchExperiment(b, "E4b") }

// BenchmarkE5Separation regenerates E5 (headline): wakeup vs broadcast
// oracle bits as n grows.
func BenchmarkE5Separation(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Subdivision regenerates E6 (remark after Thm 2.2): c-fold
// subdivision families.
func BenchmarkE6Subdivision(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Asynchrony regenerates E7: schedulers × engines stress of both
// constructions.
func BenchmarkE7Asynchrony(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Baselines regenerates E8: the knowledge/communication
// trade-off curve.
func BenchmarkE8Baselines(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Gossip regenerates E9 (extension): gossip with a tree oracle
// and exactly 2(n-1) messages.
func BenchmarkE9Gossip(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10TreeAblation regenerates E10: spanning-tree choice in the
// wakeup oracle (bits vs completion time).
func BenchmarkE10TreeAblation(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11CodecAblation regenerates E11: weight codecs in the
// broadcast oracle.
func BenchmarkE11CodecAblation(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Exploration regenerates E12 (extension): mobile-agent
// exploration with and without tree advice.
func BenchmarkE12Exploration(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Election regenerates E13 (extension): the leader-election
// knowledge ladder.
func BenchmarkE13Election(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Spanner regenerates E14 (extension): zero-communication
// spanner selection from O(n) advice bits.
func BenchmarkE14Spanner(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Bandwidth regenerates E15: the bounded-message verification
// (bits per message, per-node load).
func BenchmarkE15Bandwidth(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16BFSTree regenerates E16 (§1.2): BFS-tree construction and
// the price of asynchrony.
func BenchmarkE16BFSTree(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17MST regenerates E17 (§1.2): distributed Borůvka MST vs the
// silent oracle.
func BenchmarkE17MST(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Radio regenerates E18 (§1.1 context): radio broadcast time
// vs advice.
func BenchmarkE18Radio(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19BroadcastTreeTradeoff regenerates E19: the broadcast tree
// knowledge/time trade-off.
func BenchmarkE19BroadcastTreeTradeoff(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Neighborhood regenerates E20: the traditional radius-1-ball
// knowledge on the oracle-size scale.
func BenchmarkE20Neighborhood(b *testing.B) { benchExperiment(b, "E20") }

// Micro-benchmarks of the public API on a mid-size network.

func BenchmarkPublicWakeup(b *testing.B) {
	g, err := RandomNetwork(1024, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Wakeup(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkPublicBroadcast(b *testing.B) {
	g, err := RandomNetwork(1024, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Broadcast(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Complete {
			b.Fatal("incomplete")
		}
	}
}
