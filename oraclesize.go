// Package oraclesize is a faithful reproduction of
//
//	Pierre Fraigniaud, David Ilcinkas, Andrzej Pelc.
//	"Oracle size: a new measure of difficulty for communication tasks."
//	PODC 2006.
//
// The paper models all knowledge that network nodes have about their network
// as an oracle — a function assigning each node a binary advice string — and
// proposes the minimum total advice size for solving a task efficiently as a
// quantitative difficulty measure. Its headline result separates two
// near-identical dissemination primitives: wakeup with a linear number of
// messages needs Θ(n log n) advice bits, while broadcast with a linear
// number of messages needs only Θ(n).
//
// This package is the public face of the repository: it re-exports the
// building blocks (port-numbered graphs, oracles, schemes, simulation
// engines) and offers one-call runners for the paper's two constructions.
// The full machinery — graph families, the Lemma 2.1 adversary, the
// counting bounds, the experiment suite E1–E20 — lives in the internal
// packages and is exercised by cmd/benchtables, the examples, and the
// benchmarks in bench_test.go.
package oraclesize

import (
	"fmt"
	"math/rand"

	"oraclesize/internal/broadcast"
	"oraclesize/internal/explore"
	"oraclesize/internal/gossip"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/oracle"
	"oraclesize/internal/scheme"
	"oraclesize/internal/sim"
	"oraclesize/internal/wakeup"
)

// Core model types, re-exported for API users.
type (
	// Graph is an immutable labeled port-numbered network.
	Graph = graph.Graph
	// NodeID indexes nodes densely in [0, N).
	NodeID = graph.NodeID
	// GraphBuilder assembles graphs edge by edge.
	GraphBuilder = graph.Builder
	// Advice maps nodes to oracle strings; its SizeBits is the paper's
	// oracle-size measure.
	Advice = sim.Advice
	// Algorithm is a distributed scheme (one automaton per node).
	Algorithm = scheme.Algorithm
	// RunResult summarizes a simulation run.
	RunResult = sim.Result
)

// NewGraphBuilder returns a builder for n nodes labeled 1..n.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// RandomNetwork generates a connected random network with n nodes, m edges
// and shuffled ports, deterministically from the seed.
func RandomNetwork(n, m int, seed int64) (*Graph, error) {
	return graphgen.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
}

// Report is the outcome of running one of the paper's constructions.
type Report struct {
	// OracleBits is the total advice size (the paper's measure).
	OracleBits int
	// Messages is the total number of transmissions.
	Messages int
	// Complete reports whether every node received the source message.
	Complete bool
	// Rounds is the logical completion time under the chosen schedule.
	Rounds int
}

// Wakeup runs the Theorem 2.1 construction on g: a spanning-tree oracle of
// n·ceil(log n) + O(n log log n) bits and a wakeup scheme using exactly n-1
// messages. The run is validated against the wakeup constraint (no node
// other than the source transmits before being woken).
func Wakeup(g *Graph, source NodeID) (Report, error) {
	advice, err := wakeup.Oracle{}.Advise(g, source)
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: wakeup oracle: %w", err)
	}
	res, err := sim.Run(g, source, wakeup.Algorithm{}, advice, sim.Options{EnforceWakeup: true})
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: wakeup run: %w", err)
	}
	return report(advice, res), nil
}

// Broadcast runs the Theorem 3.1 construction on g: the light-spanning-tree
// oracle of O(n) bits and Scheme B, completing with at most 3(n-1) messages.
func Broadcast(g *Graph, source NodeID) (Report, error) {
	advice, err := broadcast.Oracle{}.Advise(g, source)
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: broadcast oracle: %w", err)
	}
	res, err := sim.Run(g, source, broadcast.Algorithm{}, advice, sim.Options{})
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: broadcast run: %w", err)
	}
	return report(advice, res), nil
}

// WakeupAdvice exposes the Theorem 2.1 oracle on its own.
func WakeupAdvice(g *Graph, source NodeID) (Advice, error) {
	return wakeup.Oracle{}.Advise(g, source)
}

// BroadcastAdvice exposes the Theorem 3.1 oracle on its own.
func BroadcastAdvice(g *Graph, source NodeID) (Advice, error) {
	return broadcast.Oracle{}.Advise(g, source)
}

// OracleSizeBits reports the paper's size measure for an advice assignment.
func OracleSizeBits(a Advice) int { return a.SizeBits() }

// GossipAll runs the gossip extension (every node learns every node's
// label) with the tree oracle: exactly 2(n-1) messages. Complete reports
// the per-node verification of the learned value sets.
func GossipAll(g *Graph) (Report, error) {
	advice, err := gossip.Oracle{}.Advise(g, 0)
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: gossip oracle: %w", err)
	}
	res, verified, err := gossip.Run(g, sim.Options{})
	if err != nil {
		return Report{}, fmt.Errorf("oraclesize: gossip run: %w", err)
	}
	return Report{
		OracleBits: advice.SizeBits(),
		Messages:   res.Messages,
		Complete:   verified,
		Rounds:     res.Rounds,
	}, nil
}

// ExploreReport is the outcome of a mobile-agent exploration.
type ExploreReport struct {
	// OracleBits is the advice size (0 for the blind strategy).
	OracleBits int
	// Moves is the number of edge traversals.
	Moves int
	// Complete reports whether every node was visited.
	Complete bool
	// Home reports whether the agent returned to its start.
	Home bool
}

// ExploreBlind walks a zero-advice DFS over g from start: Θ(m) moves.
func ExploreBlind(g *Graph, start NodeID) (ExploreReport, error) {
	res, err := explore.Run(g, start, nil, explore.NewDFS(), 0)
	if err != nil {
		return ExploreReport{}, fmt.Errorf("oraclesize: blind exploration: %w", err)
	}
	return ExploreReport{Moves: res.Moves, Complete: res.Complete, Home: res.Home}, nil
}

// ExploreAdvised walks the Euler tour of a tree oracle: exactly 2(n-1)
// moves from Θ(n log n) advice bits.
func ExploreAdvised(g *Graph, start NodeID) (ExploreReport, error) {
	advice, err := explore.TreeOracle(g, start)
	if err != nil {
		return ExploreReport{}, fmt.Errorf("oraclesize: exploration oracle: %w", err)
	}
	res, err := explore.Run(g, start, advice, explore.NewTree(), 0)
	if err != nil {
		return ExploreReport{}, fmt.Errorf("oraclesize: advised exploration: %w", err)
	}
	var a sim.Advice = advice
	return ExploreReport{
		OracleBits: a.SizeBits(),
		Moves:      res.Moves,
		Complete:   res.Complete,
		Home:       res.Home,
	}, nil
}

// FullMapAdviceSize reports, for comparison, the size of the classical
// "every node knows the whole topology" assumption on g.
func FullMapAdviceSize(g *Graph) (int, error) {
	advice, err := oracle.FullMap{}.Advise(g, 0)
	if err != nil {
		return 0, err
	}
	return advice.SizeBits(), nil
}

func report(advice Advice, res *sim.Result) Report {
	return Report{
		OracleBits: advice.SizeBits(),
		Messages:   res.Messages,
		Complete:   res.AllInformed,
		Rounds:     res.Rounds,
	}
}
