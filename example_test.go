package oraclesize_test

import (
	"fmt"
	"log"

	"oraclesize"
)

// The quickest path through the library: build a network, run the paper's
// two constructions, compare what they cost in knowledge.
func Example() {
	g, err := oraclesize.RandomNetwork(128, 512, 7)
	if err != nil {
		log.Fatal(err)
	}
	w, err := oraclesize.Wakeup(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	b, err := oraclesize.Broadcast(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wakeup: %d messages, complete=%v\n", w.Messages, w.Complete)
	fmt.Printf("broadcast within 3(n-1): %v, complete=%v\n", b.Messages <= 3*127, b.Complete)
	fmt.Printf("wakeup needs more advice: %v\n", w.OracleBits > b.OracleBits)
	// Output:
	// wakeup: 127 messages, complete=true
	// broadcast within 3(n-1): true, complete=true
	// wakeup needs more advice: true
}

// Networks can be assembled edge by edge with explicit port numbers; the
// builder validates the port assignment.
func ExampleNewGraphBuilder() {
	b := oraclesize.NewGraphBuilder(4)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(1, 2)
	b.AddEdgeAuto(2, 3)
	b.AddEdgeAuto(3, 0)
	g, err := b.Graph()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := oraclesize.Broadcast(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d m=%d complete=%v\n", g.N(), g.M(), rep.Complete)
	// Output:
	// n=4 m=4 complete=true
}

// The advice itself is a first-class object whose size is the paper's
// difficulty measure.
func ExampleWakeupAdvice() {
	g, err := oraclesize.RandomNetwork(64, 192, 3)
	if err != nil {
		log.Fatal(err)
	}
	w, err := oraclesize.WakeupAdvice(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	b, err := oraclesize.BroadcastAdvice(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wakeup advice is larger: %v\n",
		oraclesize.OracleSizeBits(w) > oraclesize.OracleSizeBits(b))
	// Output:
	// wakeup advice is larger: true
}
