package oraclesize

import (
	"math"
	"testing"
)

func TestPublicWakeupAndBroadcast(t *testing.T) {
	g, err := RandomNetwork(100, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Wakeup(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Complete || w.Messages != g.N()-1 {
		t.Errorf("wakeup: %+v", w)
	}
	b, err := Broadcast(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Complete || b.Messages > 3*(g.N()-1) {
		t.Errorf("broadcast: %+v", b)
	}
	// The separation: wakeup needs strictly more bits.
	if w.OracleBits <= b.OracleBits {
		t.Errorf("no separation: wakeup %d bits <= broadcast %d bits", w.OracleBits, b.OracleBits)
	}
}

func TestSeparationGrowsWithN(t *testing.T) {
	var prev float64
	for _, n := range []int{64, 256, 1024} {
		g, err := RandomNetwork(n, 3*n, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		w, err := WakeupAdvice(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BroadcastAdvice(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(OracleSizeBits(w)) / float64(OracleSizeBits(b))
		if ratio <= prev {
			t.Errorf("n=%d: ratio %v not growing (prev %v)", n, ratio, prev)
		}
		prev = ratio
		// wakeup bits per node should track log2 n.
		perNode := float64(OracleSizeBits(w)) / float64(n)
		if perNode < 0.5*math.Log2(float64(n)) || perNode > 2*math.Log2(float64(n)) {
			t.Errorf("n=%d: wakeup bits/node = %v, log2 n = %v", n, perNode, math.Log2(float64(n)))
		}
	}
}

func TestFullMapDwarfsPaperOracles(t *testing.T) {
	g, err := RandomNetwork(64, 192, 9)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullMapAdviceSize(g)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WakeupAdvice(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full <= OracleSizeBits(w) {
		t.Errorf("full map %d bits <= wakeup oracle %d bits", full, OracleSizeBits(w))
	}
}

func TestGraphBuilderRoundTrip(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdgeAuto(0, 1)
	b.AddEdgeAuto(1, 2)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Broadcast(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("tiny broadcast incomplete")
	}
}

func TestPublicGossipAndExplore(t *testing.T) {
	g, err := RandomNetwork(60, 180, 4)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := GossipAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Complete || gr.Messages != 2*(g.N()-1) {
		t.Errorf("gossip: %+v", gr)
	}
	blind, err := ExploreBlind(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	advised, err := ExploreAdvised(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Complete || !advised.Complete || !blind.Home || !advised.Home {
		t.Errorf("exploration incomplete: %+v / %+v", blind, advised)
	}
	if advised.Moves != 2*(g.N()-1) {
		t.Errorf("advised moves = %d", advised.Moves)
	}
	if advised.Moves > blind.Moves {
		t.Errorf("advice did not help: %d vs %d", advised.Moves, blind.Moves)
	}
	if advised.OracleBits == 0 || blind.OracleBits != 0 {
		t.Errorf("oracle bits: %d / %d", advised.OracleBits, blind.OracleBits)
	}
}
