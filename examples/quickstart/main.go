// Quickstart: build a random network, run the paper's two constructions
// through the public API, and print what each one costs in knowledge
// (oracle bits) and communication (messages).
package main

import (
	"fmt"
	"log"

	"oraclesize"
)

func main() {
	// A connected random network with 512 nodes, 2048 edges, and shuffled
	// port numbers (so the ports carry no hidden hints).
	g, err := oraclesize.RandomNetwork(512, 2048, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d nodes, m=%d edges\n\n", g.N(), g.M())

	// Wakeup (Theorem 2.1): only woken nodes may transmit. The oracle
	// encodes a spanning tree's child ports — Θ(n log n) bits — and the
	// scheme uses exactly n-1 messages.
	w, err := oraclesize.Wakeup(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wakeup    : %6d oracle bits, %5d messages, complete=%v\n",
		w.OracleBits, w.Messages, w.Complete)

	// Broadcast (Theorem 3.1): nodes may send control messages before
	// being informed. That tiny freedom lets an O(n)-bit oracle suffice.
	b, err := oraclesize.Broadcast(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast : %6d oracle bits, %5d messages, complete=%v\n",
		b.OracleBits, b.Messages, b.Complete)

	// The classical "full topology knowledge" assumption, for scale.
	full, err := oraclesize.FullMapAdviceSize(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full map  : %6d oracle bits (the assumption the paper quantifies away)\n\n", full)

	fmt.Printf("separation: wakeup needs %.1fx the advice of broadcast on this network\n",
		float64(w.OracleBits)/float64(b.OracleBits))
}
