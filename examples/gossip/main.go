// Gossip: the paper's conclusion conjectures that oracle size measures the
// difficulty of tasks beyond broadcast and wakeup. This example
// instantiates the conjecture for gossip — every node starts with a
// private value and must learn everyone's — using a Θ(n log n)-bit tree
// oracle and the classical convergecast/divergecast pair: exactly 2(n-1)
// messages, on any topology, under any schedule.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oraclesize/internal/gossip"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

func main() {
	fmt.Println("gossip with a spanning-tree oracle: 2(n-1) messages")
	fmt.Println()
	fmt.Printf("%-10s %6s %8s %12s %10s %8s %s\n",
		"family", "n", "m", "oracle-bits", "messages", "2(n-1)", "verified")

	builders := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"path", func() (*graph.Graph, error) { return graphgen.Path(128) }},
		{"star", func() (*graph.Graph, error) { return graphgen.Star(128) }},
		{"grid", func() (*graph.Graph, error) { return graphgen.Grid(12, 12) }},
		{"hypercube", func() (*graph.Graph, error) { return graphgen.Hypercube(7) }},
		{"torus", func() (*graph.Graph, error) { return graphgen.Torus(12, 12) }},
		{"random", func() (*graph.Graph, error) {
			return graphgen.RandomConnected(128, 512, rand.New(rand.NewSource(5)))
		}},
	}
	for _, b := range builders {
		g, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		advice, err := gossip.Oracle{}.Advise(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, verified, err := gossip.Run(g, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %8d %12d %10d %8d %v\n",
			b.name, g.N(), g.M(), advice.SizeBits(), res.Messages, 2*(g.N()-1), verified)
	}

	fmt.Println()
	fmt.Println("Values flow up the tree (convergecast), the root assembles the")
	fmt.Println("full set, and it flows back down — one message per tree edge per")
	fmt.Println("direction. The oracle is the wakeup oracle plus one parent port")
	fmt.Println("per node: gossip sits at the Θ(n log n) rung of the ladder.")
}
