// Knowledgeladder: the capstone demo. The paper proposes minimum oracle
// size as a universal difficulty measure; this example lines up SEVEN
// distributed tasks on one network and prints, for each, what a rung of
// knowledge buys. Every number is measured, not quoted.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oraclesize/internal/bfstree"
	"oraclesize/internal/broadcast"
	"oraclesize/internal/election"
	"oraclesize/internal/explore"
	"oraclesize/internal/gossip"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/mst"
	"oraclesize/internal/sim"
	"oraclesize/internal/spanner"
	"oraclesize/internal/wakeup"
)

func main() {
	g, err := graphgen.RandomConnected(128, 512, rand.New(rand.NewSource(20)))
	if err != nil {
		log.Fatal(err)
	}
	n, m := g.N(), g.M()
	fmt.Printf("one network: n=%d, m=%d. every task, with and without knowledge.\n\n", n, m)
	fmt.Printf("%-12s  %-24s %12s %14s\n", "task", "strategy", "advice-bits", "cost")
	fmt.Printf("%-12s  %-24s %12s %14s\n", "----", "--------", "-----------", "----")

	row := func(task, strat string, bits int, cost string) {
		fmt.Printf("%-12s  %-24s %12d %14s\n", task, strat, bits, cost)
	}

	// Wakeup (Thm 2.1 vs flooding).
	wRes, err := sim.Run(g, 0, wakeup.Flooding{}, nil, sim.Options{EnforceWakeup: true})
	if err != nil {
		log.Fatal(err)
	}
	row("wakeup", "flooding", 0, fmt.Sprintf("%d msgs", wRes.Messages))
	wAdvice, err := wakeup.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	wRes, err = sim.Run(g, 0, wakeup.Algorithm{}, wAdvice, sim.Options{EnforceWakeup: true})
	if err != nil {
		log.Fatal(err)
	}
	row("wakeup", "tree oracle (Thm 2.1)", wAdvice.SizeBits(), fmt.Sprintf("%d msgs", wRes.Messages))

	// Broadcast (Thm 3.1).
	bAdvice, err := broadcast.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	bRes, err := sim.Run(g, 0, broadcast.Algorithm{}, bAdvice, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	row("broadcast", "light tree (Thm 3.1)", bAdvice.SizeBits(), fmt.Sprintf("%d msgs", bRes.Messages))

	// Gossip.
	gAdvice, err := gossip.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	gRes, verified, err := gossip.Run(g, sim.Options{})
	if err != nil || !verified {
		log.Fatal("gossip failed")
	}
	row("gossip", "tree oracle (ext.)", gAdvice.SizeBits(), fmt.Sprintf("%d msgs", gRes.Messages))

	// Election ladder.
	eRes, err := sim.Run(g, 0, election.MaxLabelFlood{}, nil,
		sim.Options{RetainNodes: true, MaxMessages: 4*n*m + 1024})
	if err != nil {
		log.Fatal(err)
	}
	row("election", "max-label flood", 0, fmt.Sprintf("%d msgs", eRes.Messages))
	tAdvice, err := election.TreeOracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	eRes, err = sim.Run(g, 0, election.MarkedTree{}, tAdvice, sim.Options{RetainNodes: true})
	if err != nil {
		log.Fatal(err)
	}
	row("election", "marked tree (ext.)", tAdvice.SizeBits(), fmt.Sprintf("%d msgs", eRes.Messages))

	// Exploration.
	dfsRes, err := explore.Run(g, 0, nil, explore.NewDFS(), 0)
	if err != nil {
		log.Fatal(err)
	}
	row("exploration", "blind DFS", 0, fmt.Sprintf("%d moves", dfsRes.Moves))
	xAdvice, err := explore.TreeOracle(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	var xa sim.Advice = xAdvice
	treeRes, err := explore.Run(g, 0, xAdvice, explore.NewTree(), 0)
	if err != nil {
		log.Fatal(err)
	}
	row("exploration", "Euler tour (ext.)", xa.SizeBits(), fmt.Sprintf("%d moves", treeRes.Moves))

	// Spanner.
	spAdvice, err := spanner.Advice(g)
	if err != nil {
		log.Fatal(err)
	}
	spOut, err := spanner.Build(g, spAdvice, spanner.LightTree{})
	if err != nil {
		log.Fatal(err)
	}
	row("spanner", "keep everything", 0, fmt.Sprintf("%d edges", m))
	row("spanner", "light tree (ext.)", spAdvice.SizeBits(), fmt.Sprintf("%d edges", len(spOut.Edges)))

	// BFS tree.
	fRes, err := sim.Run(g, 0, bfstree.Flood{}, nil, sim.Options{RetainNodes: true})
	if err != nil {
		log.Fatal(err)
	}
	row("bfs-tree", "distance flood", 0, fmt.Sprintf("%d msgs", fRes.Messages))
	bfAdvice, err := bfstree.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	row("bfs-tree", "silent oracle (ext.)", bfAdvice.SizeBits(), "0 msgs")

	// MST.
	boruvka, err := mst.Boruvka(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	row("mst", "distributed Borůvka", 0, fmt.Sprintf("%d msgs", boruvka.Messages))
	mAdvice, err := mst.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	row("mst", "silent oracle (ext.)", mAdvice.SizeBits(), "0 msgs")

	fmt.Println()
	fmt.Println("The pattern the paper predicts holds on every row: tasks differ not")
	fmt.Println("in whether knowledge helps, but in exactly how many bits they need —")
	fmt.Println("oracle size is the common currency (Fraigniaud-Ilcinkas-Pelc, PODC'06).")
}
