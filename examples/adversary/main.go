// Adversary: a live demonstration of Lemma 2.1, the engine of both lower
// bounds. An adversary hides a tuple X of labeled special edges inside the
// complete graph K*_n and answers each probe so as to keep as many
// candidate instances alive as possible. Information theory says any
// scheme needs at least log2(|I|/|X|!) probes; the demo plays three
// strategies — a blind sweep, a random order, and an informed greedy
// splitter — and prints how each fares against the bound.
package main

import (
	"fmt"
	"log"

	"oraclesize/internal/edgediscovery"
)

func main() {
	fmt.Println("edge discovery vs the Lemma 2.1 adversary")
	fmt.Println()
	fmt.Printf("%3s %4s %8s %8s  %-13s %7s %s\n", "n", "|X|", "|I|", "bound", "scheme", "probes", "meets bound")
	for _, tc := range []struct{ n, k int }{
		{4, 1}, {4, 2}, {5, 1}, {5, 2}, {5, 3}, {6, 1}, {6, 2}, {7, 1},
	} {
		family, err := edgediscovery.Family(tc.n, tc.k, nil)
		if err != nil {
			log.Fatal(err)
		}
		bound := edgediscovery.LowerBound(len(family), tc.k)
		for _, s := range []edgediscovery.Scheme{
			edgediscovery.SweepScheme{},
			&edgediscovery.RandomScheme{Seed: 99},
			&edgediscovery.GreedySplitScheme{Family: family},
		} {
			probes, err := edgediscovery.PlayAdversary(family, s, 1<<20)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d %4d %8d %8.2f  %-13s %7d %v\n",
				tc.n, tc.k, len(family), bound, s.Name(), probes, float64(probes) >= bound)
		}
	}
	fmt.Println()
	fmt.Println("No strategy beats log2(|I|/|X|!): each probe halves the candidate")
	fmt.Println("set at best, and revealed labels only buy back a |X|! factor. The")
	fmt.Println("paper plugs wakeup (Thm 2.2) and broadcast (Thm 3.2) instance")
	fmt.Println("families into exactly this game to force Ω(n log n) and super-")
	fmt.Println("linear message counts when the oracle is too small.")
}
