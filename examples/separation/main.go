// Separation: the paper's headline result, measured. Sweeping network
// sizes, the wakeup oracle (Theorem 2.1) costs Θ(n log n) bits while the
// broadcast oracle (Theorem 3.1) costs O(n) bits — both with a linear
// number of messages. The printed ratio column tracks log2(n).
package main

import (
	"fmt"
	"log"
	"math"

	"oraclesize"
)

func main() {
	fmt.Println("oracle bits needed for linear-message dissemination")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %8s  %8s\n", "n", "wakeup-bits", "bcast-bits", "ratio", "log2(n)")
	for _, n := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096} {
		g, err := oraclesize.RandomNetwork(n, 3*n, int64(n))
		if err != nil {
			log.Fatal(err)
		}
		w, err := oraclesize.WakeupAdvice(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		b, err := oraclesize.BroadcastAdvice(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		wb, bb := oraclesize.OracleSizeBits(w), oraclesize.OracleSizeBits(b)
		fmt.Printf("%8d  %12d  %12d  %8.2f  %8.2f\n",
			n, wb, bb, float64(wb)/float64(bb), math.Log2(float64(n)))
	}
	fmt.Println()
	fmt.Println("The ratio grows like log2(n): an efficient wakeup needs strictly")
	fmt.Println("more knowledge about the network than an efficient broadcast,")
	fmt.Println("even though the two tasks differ only in whether uninformed nodes")
	fmt.Println("may speak first (Fraigniaud, Ilcinkas, Pelc — PODC 2006).")
}
