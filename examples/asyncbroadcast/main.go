// Asyncbroadcast: the paper claims its upper bounds hold "even for totally
// asynchronous communication". This example runs Scheme B (Theorem 3.1)
// under increasingly hostile message orderings — synchronous FIFO, LIFO
// (depth-first adversary), seeded-random, and finally the concurrent
// engine with one goroutine per node under the Go scheduler's real
// interleaving — and shows the message bound 3(n-1) holding in all of them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oraclesize/internal/broadcast"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

func main() {
	g, err := graphgen.RandomConnected(256, 1024, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	advice, err := broadcast.Oracle{}.Advise(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	bound := 3 * (g.N() - 1)
	fmt.Printf("network: n=%d m=%d; oracle: %d bits; message bound 3(n-1)=%d\n\n",
		g.N(), g.M(), advice.SizeBits(), bound)

	fmt.Printf("%-22s  %9s  %9s  %s\n", "schedule", "messages", "rounds", "complete")
	for _, sched := range []struct {
		name string
		s    sim.Scheduler
	}{
		{"fifo (synchronous)", sim.NewFIFO()},
		{"lifo (depth-first)", sim.NewLIFO()},
		{"random seed=1", sim.NewRandom(1)},
		{"random seed=2", sim.NewRandom(2)},
		{"random seed=3", sim.NewRandom(3)},
	} {
		res, err := sim.Run(g, 0, broadcast.Algorithm{}, advice, sim.Options{Scheduler: sched.s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s  %9d  %9d  %v\n", sched.name, res.Messages, res.Rounds, res.AllInformed)
	}

	// The concurrent engine: genuine parallelism, no global event queue.
	for i := 1; i <= 3; i++ {
		res, err := sim.RunConcurrent(g, 0, broadcast.Algorithm{}, advice, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s  %9d  %9s  %v\n",
			fmt.Sprintf("goroutines run %d", i), res.Messages, "-", res.AllInformed)
	}

	fmt.Printf("\nEvery schedule stayed within %d messages: Scheme B's hello/K/S\n", bound)
	fmt.Println("bookkeeping is order-independent, exactly as the paper argues.")
}
