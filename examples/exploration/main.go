// Exploration: the paper's conclusion names graph exploration by mobile
// agents as another task whose difficulty oracles could measure. This
// example walks an agent over several topologies twice: once with zero
// advice (depth-first search over every edge, Θ(m) moves) and once with a
// Θ(n log n)-bit tree oracle (an Euler tour, exactly 2(n-1) moves).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oraclesize/internal/explore"
	"oraclesize/internal/graph"
	"oraclesize/internal/graphgen"
	"oraclesize/internal/sim"
)

func main() {
	fmt.Println("mobile-agent exploration: advice bits vs moves")
	fmt.Println()
	fmt.Printf("%-10s %6s %8s   %-14s %12s %8s %9s %6s\n",
		"family", "n", "m", "strategy", "advice-bits", "moves", "complete", "home")

	builders := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"grid", func() (*graph.Graph, error) { return graphgen.Grid(10, 10) }},
		{"hypercube", func() (*graph.Graph, error) { return graphgen.Hypercube(7) }},
		{"complete", func() (*graph.Graph, error) { return graphgen.Complete(48) }},
		{"random", func() (*graph.Graph, error) {
			return graphgen.RandomConnected(100, 400, rand.New(rand.NewSource(9)))
		}},
	}
	for _, b := range builders {
		g, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		dfs, err := explore.Run(g, 0, nil, explore.NewDFS(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %8d   %-14s %12d %8d %9v %6v\n",
			b.name, g.N(), g.M(), "dfs-no-advice", 0, dfs.Moves, dfs.Complete, dfs.Home)
		advice, err := explore.TreeOracle(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		var a sim.Advice = advice
		tree, err := explore.Run(g, 0, advice, explore.NewTree(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %8d   %-14s %12d %8d %9v %6v\n",
			b.name, g.N(), g.M(), "tree-advice", a.SizeBits(), tree.Moves, tree.Complete, tree.Home)
	}

	fmt.Println()
	fmt.Println("Tree advice pins the walk to 2(n-1) moves regardless of density;")
	fmt.Println("without it, the agent pays for every edge it must rule out. The")
	fmt.Println("paper's oracle-size measure prices that difference in bits.")
}
